// Package shard scales the NETCLUS serving stack across cores by
// partitioning the candidate-site set over N engine shards and answering
// queries with a scatter-gather protocol that is *bit-exact* against the
// single-shard engine.
//
// The decomposition exploits a structural fact of the index: GDSP
// clustering, trajectory lists, and neighbor lists depend only on the road
// network, the radius ladder, and the trajectory set — never on the site
// set. Sites only pick each cluster's representative. So every shard builds
// the same clustering over the same (replicated) trajectories, with only
// its own sites registered; for each cluster, the shard whose local
// representative is globally closest (min dr, then min node id — the exact
// tie-break of core.chooseRepresentative) "owns" the cluster, and the union
// of owned representatives across shards IS the single-shard representative
// set, entry for entry. Each shard fills Eq. 9 covers only for its owned
// clusters (a masked fill, memoized per shard), and the gather runs the
// paper's Algorithm 1 greedy *distributed*: shards keep the marginals of
// their own representatives, each round reduces per-shard argmax candidates
// under the paper's (marginal, weight, index) tie-break, and the winner's
// trajectory-score list is broadcast back as utility deltas. Every floating
// point operation matches tops.IncGreedy's plain path op for op, which is
// what the shard-differential oracle (oracle_test.go) enforces.
//
// §6 updates route by ownership: a site mutation goes to the one shard the
// partitioner maps its node to (and re-derives cluster ownership), while
// trajectory mutations — which touch every shard's trajectory lists —
// broadcast. The payoff shows up under update-heavy traffic: a site update
// invalidates one shard's cover cache instead of all covers, and the stale
// ownership masks on the other shards purge themselves on first contact
// (core's masked-cover invalidation hook).
package shard

import (
	"fmt"
	"math"
	"runtime"

	"netclus/internal/roadnet"
)

// Partitioner maps a road-network node to the shard that owns it as a
// candidate site. Implementations must be total (any int value in, a shard
// index in [0, Shards()) out — adversarial ids must not panic) and
// deterministic, because update routing and snapshot reloads re-derive the
// partition from scratch.
type Partitioner interface {
	// Name identifies the partitioner in snapshot manifests.
	Name() string
	// Shards returns the number of shards the partitioner maps onto.
	Shards() int
	// Shard returns the owning shard of node v, for ANY v.
	Shard(v roadnet.NodeID) int
}

// Partitioner names accepted by NewPartitioner (and topsserve -partitioner).
const (
	HashPartitioner = "hash"
	GridPartitioner = "grid"
)

// NewPartitioner constructs a partitioner by manifest name. The graph is
// needed by the spatial partitioner for node coordinates; the hash
// partitioner ignores it.
func NewPartitioner(name string, n int, g *roadnet.Graph) (Partitioner, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: shard count %d must be >= 1", n)
	}
	switch name {
	case "", HashPartitioner:
		return &hashPart{n: n}, nil
	case GridPartitioner:
		return newGridPart(n, g), nil
	default:
		return nil, fmt.Errorf("shard: unknown partitioner %q (want %q or %q)", name, HashPartitioner, GridPartitioner)
	}
}

// hashPart shards by an FNV-style mix of the node id: uniform, stateless,
// and stable across processes.
type hashPart struct{ n int }

func (h *hashPart) Name() string { return HashPartitioner }
func (h *hashPart) Shards() int  { return h.n }

func (h *hashPart) Shard(v roadnet.NodeID) int {
	x := uint64(uint32(v))
	// fnv-1a over the four little-endian bytes of the id.
	const offset64, prime64 = 14695981039346656037, 1099511628211
	s := uint64(offset64)
	for i := 0; i < 4; i++ {
		s ^= (x >> (8 * i)) & 0xff
		s *= prime64
	}
	return int(s % uint64(h.n))
}

// gridPart shards spatially: the graph's bounding box is cut into a
// near-square grid of n cells (row-major), and a node goes to the cell its
// coordinate falls in. Sites that are road-network neighbors tend to share
// a shard, which concentrates each shard's cluster ownership spatially.
// Nodes outside the graph (possible only for adversarial update requests,
// which the owning shard will reject anyway) fall back to the hash route so
// the partitioner stays total.
type gridPart struct {
	n          int
	g          *roadnet.Graph
	minX, minY float64
	invW, invH float64 // 1/cell-width, 1/cell-height (0 when degenerate)
	cols, rows int
	fallback   hashPart
}

func newGridPart(n int, g *roadnet.Graph) *gridPart {
	p := &gridPart{n: n, g: g, fallback: hashPart{n: n}}
	p.cols = int(math.Ceil(math.Sqrt(float64(n))))
	p.rows = (n + p.cols - 1) / p.cols
	if g == nil || g.NumNodes() == 0 {
		return p
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for v := 0; v < g.NumNodes(); v++ {
		pt := g.Point(roadnet.NodeID(v))
		minX = math.Min(minX, pt.X)
		minY = math.Min(minY, pt.Y)
		maxX = math.Max(maxX, pt.X)
		maxY = math.Max(maxY, pt.Y)
	}
	p.minX, p.minY = minX, minY
	if w := maxX - minX; w > 0 {
		p.invW = float64(p.cols) / w
	}
	if h := maxY - minY; h > 0 {
		p.invH = float64(p.rows) / h
	}
	return p
}

func (p *gridPart) Name() string { return GridPartitioner }
func (p *gridPart) Shards() int  { return p.n }

func (p *gridPart) Shard(v roadnet.NodeID) int {
	if p.g == nil || v < 0 || int(v) >= p.g.NumNodes() {
		return p.fallback.Shard(v)
	}
	pt := p.g.Point(v)
	col := int((pt.X - p.minX) * p.invW)
	row := int((pt.Y - p.minY) * p.invH)
	if col >= p.cols {
		col = p.cols - 1
	}
	if row >= p.rows {
		row = p.rows - 1
	}
	if col < 0 {
		col = 0
	}
	if row < 0 {
		row = 0
	}
	return (row*p.cols + col) % p.n
}

// ValidateShardCount applies the serving-CLI policy for -shards: reject
// non-positive counts outright and cap at the machine's core count (more
// shards than cores only multiplies build cost and memory without buying
// parallelism). The returned warning is non-empty when the count was
// capped.
func ValidateShardCount(n int) (int, string, error) {
	if n <= 0 {
		return 0, "", fmt.Errorf("shard: -shards=%d must be a positive shard count", n)
	}
	if cpus := runtime.NumCPU(); n > cpus {
		return cpus, fmt.Sprintf("shard: -shards=%d exceeds %d CPUs; capping at %d", n, cpus, cpus), nil
	}
	return n, "", nil
}
