package shard

import (
	"math/rand"
	"testing"

	"netclus/internal/core"
	"netclus/internal/engine"
	"netclus/internal/gen"
	"netclus/internal/roadnet"
	"netclus/internal/tops"
	"netclus/internal/trajectory"
)

// buildFixture generates a deterministic dataset. Two calls with the same
// seed yield independent but identical instances, which the differential
// tests rely on: one copy feeds the single-shard reference engine, another
// the sharded engine, and both absorb the same update sequences.
func buildFixture(t testing.TB, seed int64) (*tops.Instance, *gen.City) {
	t.Helper()
	city, err := gen.GenerateCity(gen.CityConfig{
		Topology: gen.GridMesh, Nodes: 500, SpanKm: 10, Jitter: 0.2,
		OneWayFrac: 0.1, RemoveFrac: 0.05, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := gen.GenerateTrajectories(city, gen.TrajConfig{Count: 60, Seed: seed + 1})
	if err != nil {
		t.Fatal(err)
	}
	sites, err := gen.SampleSites(city.Graph, gen.SiteConfig{Count: 120, Seed: seed + 2})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := tops.NewInstance(city.Graph, store, sites)
	if err != nil {
		t.Fatal(err)
	}
	return inst, city
}

// fixtureBuild are the reference build options every differential test
// uses; the explicit τ range keeps ladders comparable across fixtures.
var fixtureBuild = core.Options{Gamma: 0.75, TauMin: 0.4, TauMax: 6.4}

// singleEngine builds the single-shard reference engine over inst.
func singleEngine(t testing.TB, inst *tops.Instance) *engine.Engine {
	t.Helper()
	idx, err := core.Build(inst, fixtureBuild)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(idx, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// shardedEngine builds a sharded engine over inst.
func shardedEngine(t testing.TB, inst *tops.Instance, shards int, partitioner string) *Sharded {
	t.Helper()
	s, err := Build(inst, Options{Shards: shards, Partitioner: partitioner, Build: fixtureBuild})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// extraTrajectories generates trajectories over the same city that are not
// part of the fixture store, for ingestion during update tests.
func extraTrajectories(t testing.TB, city *gen.City, n int, seed int64) []*trajectory.Trajectory {
	t.Helper()
	store, err := gen.GenerateTrajectories(city, gen.TrajConfig{Count: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*trajectory.Trajectory, 0, n)
	store.ForEach(func(_ trajectory.ID, tr *trajectory.Trajectory) {
		out = append(out, tr)
	})
	return out
}

// drawPref picks a random preference family and threshold, mirroring the
// engine oracle's draw distribution.
func drawPref(rng *rand.Rand) tops.Preference {
	tau := 0.3 + rng.Float64()*6.0
	switch rng.Intn(4) {
	case 0:
		return tops.Binary(tau)
	case 1:
		return tops.Linear(tau)
	case 2:
		return tops.ConvexQuadratic(tau)
	default:
		return tops.ExpDecay(tau, 0.5+rng.Float64()*1.5)
	}
}

// sameAnswer asserts BIT-exact equality of two query answers: same sites in
// the same order, same dense site ids, identical utility bits. This is the
// shard-differential bar — stronger than the engine oracle's tolerance.
func sameAnswer(t *testing.T, label string, got, want *core.QueryResult) {
	t.Helper()
	if got.EstimatedUtility != want.EstimatedUtility {
		t.Fatalf("%s: utility %v != %v (diff %g)", label, got.EstimatedUtility, want.EstimatedUtility, got.EstimatedUtility-want.EstimatedUtility)
	}
	if got.EstimatedCovered != want.EstimatedCovered {
		t.Fatalf("%s: covered %d != %d", label, got.EstimatedCovered, want.EstimatedCovered)
	}
	if got.InstanceUsed != want.InstanceUsed {
		t.Fatalf("%s: instance %d != %d", label, got.InstanceUsed, want.InstanceUsed)
	}
	if got.NumRepresentatives != want.NumRepresentatives {
		t.Fatalf("%s: representatives %d != %d", label, got.NumRepresentatives, want.NumRepresentatives)
	}
	if len(got.Sites) != len(want.Sites) {
		t.Fatalf("%s: %d sites != %d", label, len(got.Sites), len(want.Sites))
	}
	for i := range got.Sites {
		if got.Sites[i] != want.Sites[i] {
			t.Fatalf("%s: site %d: node %d != %d", label, i, got.Sites[i], want.Sites[i])
		}
		if got.SiteIDs[i] != want.SiteIDs[i] {
			t.Fatalf("%s: site %d: dense id %d != %d", label, i, got.SiteIDs[i], want.SiteIDs[i])
		}
	}
}

// nonSiteNode finds a node that is not currently a site of inst, scanning
// from a random start.
func nonSiteNode(g *roadnet.Graph, inst *tops.Instance, rng *rand.Rand) (roadnet.NodeID, bool) {
	start := rng.Intn(g.NumNodes())
	for d := 0; d < g.NumNodes(); d++ {
		v := roadnet.NodeID((start + d) % g.NumNodes())
		if _, ok := inst.SiteIDOf(v); !ok {
			return v, true
		}
	}
	return 0, false
}
