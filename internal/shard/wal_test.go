package shard

import (
	"context"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"netclus/internal/core"
	"netclus/internal/roadnet"
	"netclus/internal/tops"
	"netclus/internal/trajectory"
	"netclus/internal/wal"
)

// Durability differential for the sharded topology: a WAL-served sharded
// engine is crashed, recovered from checkpoint + log-tail replay, and must
// answer bit-identically to (a) an uninterrupted sharded twin and (b) the
// single-shard reference engine driven through the same mutations — so the
// recovery path preserves the scatter-gather bit-exactness the shard
// oracle already proves for the live path.

// walOps is one §6 mutation applied identically to every engine under
// test (Sharded and engine.Engine share the mutation surface).
type walOps interface {
	AddSite(v roadnet.NodeID) error
	DeleteSite(v roadnet.NodeID) error
	AddTrajectory(tr *trajectory.Trajectory) (trajectory.ID, error)
	DeleteTrajectory(tid trajectory.ID) error
}

func shardedPair(t *testing.T, inst *tops.Instance, shards int) (*Sharded, *Sharded) {
	t.Helper()
	mk := func(in *tops.Instance) *Sharded {
		s, err := Build(in, Options{Shards: shards, Build: fixtureBuild})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	instB := cloneInstance(inst)
	return mk(inst), mk(instB)
}

// cloneInstance deep-copies the mutable parts of a problem instance so two
// engines can diverge-proof each other.
func cloneInstance(inst *tops.Instance) *tops.Instance {
	return &tops.Instance{
		G:     inst.G,
		Trajs: inst.Trajs.Clone(),
		Sites: append([]roadnet.NodeID(nil), inst.Sites...),
	}
}

func sameShardAnswers(t *testing.T, label string, got *Sharded, want interface {
	Query(ctx context.Context, opts core.QueryOptions) (*core.QueryResult, error)
}, rng *rand.Rand, draws int) {
	t.Helper()
	ctx := context.Background()
	for d := 0; d < draws; d++ {
		opts := core.QueryOptions{K: 1 + rng.Intn(10), Pref: drawPref(rng)}
		rg, err := got.Query(ctx, opts)
		if err != nil {
			t.Fatalf("%s: recovered query: %v", label, err)
		}
		rw, err := want.Query(ctx, opts)
		if err != nil {
			t.Fatalf("%s: reference query: %v", label, err)
		}
		if rg.EstimatedUtility != rw.EstimatedUtility || len(rg.Sites) != len(rw.Sites) {
			t.Fatalf("%s: draw %d: utility %v/%d sites vs %v/%d",
				label, d, rg.EstimatedUtility, len(rg.Sites), rw.EstimatedUtility, len(rw.Sites))
		}
		for i := range rg.Sites {
			if rg.Sites[i] != rw.Sites[i] || rg.SiteIDs[i] != rw.SiteIDs[i] {
				t.Fatalf("%s: draw %d site %d: (%d,%d) vs (%d,%d)",
					label, d, i, rg.Sites[i], rg.SiteIDs[i], rw.Sites[i], rw.SiteIDs[i])
			}
		}
	}
}

func TestShardedWALRecoveryDifferential(t *testing.T) {
	inst, city := buildFixture(t, 761)
	single := singleEngine(t, cloneInstance(inst))
	primary, twin := shardedPair(t, inst, 3)

	walDir := t.TempDir()
	log, err := wal.Open(walDir, wal.Options{Policy: wal.SyncAlways, SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := primary.AttachWAL(log); err != nil {
		t.Fatal(err)
	}

	// Scripted mutation stream: site add/delete and trajectory add/delete,
	// applied in lockstep to the sharded primary, the sharded twin, and
	// the single-shard reference. Validity (free nodes, live trajectory
	// ids) is tracked externally so the script never consults engine
	// internals.
	rng := rand.New(rand.NewSource(43))
	extras := extraTrajectories(t, city, 24, 9011)
	siteSet := make(map[roadnet.NodeID]bool, len(inst.Sites))
	siteList := append([]roadnet.NodeID(nil), inst.Sites...)
	for _, s := range siteList {
		siteSet[s] = true
	}
	var liveIDs []trajectory.ID
	for i := 0; i < inst.Trajs.Len(); i++ {
		liveIDs = append(liveIDs, trajectory.ID(i))
	}
	nextTID := trajectory.ID(inst.Trajs.Len())

	targets := []walOps{primary, twin, single}
	apply := func(op func(walOps) error) {
		t.Helper()
		for i, m := range targets {
			if err := op(m); err != nil {
				t.Fatalf("target %d: %v", i, err)
			}
		}
	}
	ckptPath := filepath.Join(walDir, "checkpoint.ncck")
	var ckptLSN uint64
	nOps := 24
	for i := 0; i < nOps; i++ {
		switch rng.Intn(4) {
		case 0:
			var v roadnet.NodeID
			for {
				v = roadnet.NodeID(rng.Intn(inst.G.NumNodes()))
				if !siteSet[v] {
					break
				}
			}
			siteSet[v] = true
			siteList = append(siteList, v)
			apply(func(m walOps) error { return m.AddSite(v) })
		case 1:
			slot := rng.Intn(len(siteList))
			v := siteList[slot]
			siteList[slot] = siteList[len(siteList)-1]
			siteList = siteList[:len(siteList)-1]
			delete(siteSet, v)
			apply(func(m walOps) error { return m.DeleteSite(v) })
		case 2:
			tr := extras[0]
			extras = extras[1:]
			liveIDs = append(liveIDs, nextTID)
			nextTID++
			apply(func(m walOps) error {
				_, err := m.AddTrajectory(tr)
				return err
			})
		default:
			if len(liveIDs) <= 20 {
				i--
				continue
			}
			slot := rng.Intn(len(liveIDs))
			tid := liveIDs[slot]
			liveIDs[slot] = liveIDs[len(liveIDs)-1]
			liveIDs = liveIDs[:len(liveIDs)-1]
			apply(func(m walOps) error { return m.DeleteTrajectory(tid) })
		}
		if i == nOps/2 {
			if err := wal.AtomicWriteFile(ckptPath, func(w io.Writer) error {
				_, err := primary.Checkpoint(w)
				return err
			}); err != nil {
				t.Fatal(err)
			}
			ckptLSN = primary.LSN()
		}
	}
	if primary.LSN() != uint64(nOps) {
		t.Fatalf("primary LSN %d after %d mutations", primary.LSN(), nOps)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash + recover: checkpoint reconstructs the mutated dataset over
	// the immutable graph, LoadSharded re-attaches the container, the log
	// tail replays through ApplyRecord.
	log2, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if _, err := log2.Compact(ckptLSN); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rinst, _, br, err := wal.ReadCheckpoint(f, city.Graph)
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := LoadSharded(br, rinst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if recovered.LSN() != ckptLSN {
		t.Fatalf("checkpoint stamped LSN %d, want %d", recovered.LSN(), ckptLSN)
	}
	if recovered.Shards() != 3 {
		t.Fatalf("recovered %d shards, want 3", recovered.Shards())
	}
	n, err := wal.Replay(log2, recovered)
	if err != nil {
		t.Fatal(err)
	}
	if n != nOps-int(ckptLSN) {
		t.Fatalf("replayed %d records, want %d", n, nOps-int(ckptLSN))
	}

	qrng := rand.New(rand.NewSource(101))
	sameShardAnswers(t, "vs-sharded-twin", recovered, twin, qrng, 6)
	sameShardAnswers(t, "vs-single-shard", recovered, single, qrng, 6)

	// The manifest LSN also round-trips through the directory layout.
	dir := t.TempDir()
	if err := recovered.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	dirInst := cloneInstance(recovered.fullInstance())
	back, err := LoadDir(dir, dirInst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if back.LSN() != uint64(nOps) {
		t.Fatalf("LoadDir LSN %d, want %d", back.LSN(), nOps)
	}
}

// fullInstance reassembles the primary's current logical dataset (shared
// graph, extended store, mirror-ordered sites) for snapshot reloads.
func (s *Sharded) fullInstance() *tops.Instance {
	return &tops.Instance{G: s.g, Trajs: s.shards[0].inst.Trajs, Sites: s.sites}
}
