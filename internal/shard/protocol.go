package shard

import (
	"fmt"

	"netclus/internal/tops"
)

// The distributed-greedy round protocol, extracted into wire-codable
// messages so the scatter/gather of shard.Sharded runs identically across
// process boundaries (internal/router fronting N topsserve shard members).
//
// One query is a session: the gather side (in-process gatherSet, or the
// router) sends each owning shard a StartRequest carrying the ladder
// instance, the preference in wire form, and the shard's ownership mask;
// the shard fills its masked cover, seeds its marginals, and answers with
// its local argmax candidate plus that candidate's trajectory-score (TC)
// list. The gather reduces the candidates under tops.GreaterSite, applies
// the winner's TC list to its utility vector (ApplyWinner), and broadcasts
// the resulting utility deltas in a StepRequest; each shard absorbs them,
// re-takes its argmax, and answers again. Every float64 op on both sides
// is shared with the in-process gather (the helpers below are called by
// greedy.go too), and Go's encoding/json emits float64 with the shortest
// round-trip representation, so all values — marginals, weights, scores,
// deltas — survive the wire bit-for-bit. That is what keeps a router-tier
// answer float-op-for-float-op identical to the single-process engine.

// WirePref is a preference in wire form: the serving layer's (name, τ, λ)
// triple, re-lowered to a tops.Preference on the receiving side with the
// exact constructor the /v1/query decoder uses.
type WirePref struct {
	Name   string  `json:"name"`
	Tau    float64 `json:"tau"`
	Lambda float64 `json:"lambda,omitempty"`
}

// Preference lowers the wire form. The switch mirrors the /v1/query
// decoder so a preference crossing the shard wire reconstructs the same
// function the front door would have built.
func (w WirePref) Preference() (tops.Preference, error) {
	switch w.Name {
	case "", "binary":
		return tops.Binary(w.Tau), nil
	case "linear":
		return tops.Linear(w.Tau), nil
	case "convex":
		return tops.ConvexQuadratic(w.Tau), nil
	case "exp":
		lambda := w.Lambda
		if lambda == 0 {
			lambda = 1
		}
		return tops.ExpDecay(w.Tau, lambda), nil
	default:
		return tops.Preference{}, fmt.Errorf("shard: unknown preference %q", w.Name)
	}
}

// UtilDelta is one trajectory's utility improvement from a selection
// round, broadcast from the gather to the shards.
type UtilDelta struct {
	Traj int32   `json:"t"`
	OldU float64 `json:"o"`
	NewU float64 `json:"n"`
}

// WireRep is one representative row of GET /v1/shard/reps: the inputs of
// the gather-side ownership reduce (per cluster, the shard with minimal
// (dr, node) owns it — the single-shard representative tie-break).
type WireRep struct {
	Cluster int32   `json:"c"`
	Node    int64   `json:"v"`
	Dr      float64 `json:"dr"`
}

// StartRequest opens a query session on one shard member
// (POST /v1/shard/query/start).
type StartRequest struct {
	// QID names the session; the gather side picks it unique per (query,
	// attempt) so an aborted query's late rounds cannot touch a retry.
	QID string `json:"qid"`
	// P is the ladder instance serving the query's τ.
	P    int      `json:"p"`
	Pref WirePref `json:"pref"`
	// Mask lists the clusters this shard owns (ascending), and MaskGlobal
	// the global dense representative index of each — the positions the
	// shard's candidates occupy in the single-shard representative space.
	Mask       []int64 `json:"mask"`
	MaskGlobal []int32 `json:"mask_global"`
}

// StepRequest advances a session one round (POST /v1/shard/query/step):
// the previous round's winner and the utility deltas it caused.
type StepRequest struct {
	QID string `json:"qid"`
	// WinnerGI is the winning candidate's global dense index; the shard
	// whose last candidate carried it marks that representative selected.
	WinnerGI int32       `json:"winner_gi"`
	Deltas   []UtilDelta `json:"deltas"`
}

// EndRequest releases a session (POST /v1/shard/query/end). Sessions also
// expire on their own, so a crashed gather cannot leak them.
type EndRequest struct {
	QID string `json:"qid"`
}

// RoundReply is a shard's answer to a start or step: its current local
// argmax candidate (nil once every owned representative is selected) and,
// on start, the shard cover's trajectory universe size.
type RoundReply struct {
	// M is the shard cover's trajectory count; the gather sizes its
	// utility vector at the max over shards. Zero after the first round.
	M    int       `json:"m,omitempty"`
	Cand *WireCand `json:"cand,omitempty"`
}

// WireCand is one shard's per-round argmax candidate together with its TC
// list, shipped eagerly so the gather can apply a winning candidate
// without another round trip.
type WireCand struct {
	GI     int32   `json:"gi"`
	Marg   float64 `json:"marg"`
	Weight float64 `json:"w"`
	// Trajs/Scores are the candidate's TC list (trajectory ids are global:
	// every shard replicates the trajectory store).
	Trajs  []int32   `json:"tc_t"`
	Scores []float64 `json:"tc_s"`
}

// MemberMeta is GET /v1/shard/meta: everything the router needs to adopt
// a shard process — topology parameters it must verify agree across
// members, the ladder parameters that make instance selection local
// (core.InstanceForTau), and the site lists that seed the router's global
// dense-id mirror.
type MemberMeta struct {
	Shards      int     `json:"shards"`
	Index       int     `json:"index"`
	Partitioner string  `json:"partitioner"`
	TauMin      float64 `json:"tau_min"`
	TauMax      float64 `json:"tau_max"`
	Gamma       float64 `json:"gamma"`
	Rungs       int     `json:"rungs"`
	// Sites is this shard's live site list in its own dense order.
	Sites []int64 `json:"sites"`
	// InitialSites is the full global site order the member was built
	// from, when it still knows it (a member recovered from a checkpoint
	// does not). All members of one build report the same list; the router
	// seeds its dense-id mirror from it so SiteIDs match the single-process
	// engine's.
	InitialSites []int64 `json:"initial_sites,omitempty"`
	LSN          uint64  `json:"lsn"`
	Epoch        uint64  `json:"epoch"`
}

// The round arithmetic, shared between the in-process gather (greedy.go)
// and the cross-process member/router pair. Keeping these loops in one
// place is what makes "bit-exact across the wire" a structural property
// instead of a copy-discipline one.

// seedLocalMarginals fills one shard's round-0 marginals: each owned
// representative's initial marginal is its TC scores summed left to right
// (the utility vector is all zeros before the first selection, so each
// positive score contributes exactly itself — the same float sequence as
// Algorithm 1's first iteration). Non-winner slots (g2l < 0) are marked
// permanently selected so the argmax and delta loops never read them.
func seedLocalMarginals(cs *tops.CoverSets, g2l []int32, marg []float64, selected []bool) {
	if cs.AllPositiveScores() {
		// The initial marginal of every local site is bit-identical to its
		// weight (the same left-to-right sum) — one copy instead of an
		// O(pairs) scan. Non-winner slots keep a junk marginal but are
		// permanently selected, so they are never read.
		copy(marg, cs.Weights)
		for li := range g2l {
			if g2l[li] < 0 {
				selected[li] = true
			}
		}
		return
	}
	for li := range g2l {
		if g2l[li] < 0 {
			// Not a current winner (possible only under concurrent
			// mutation): never a candidate.
			selected[li] = true
			continue
		}
		var m float64
		trajs, scores := cs.TC(int32(li))
		for i := range trajs {
			if g := scores[i]; g > 0 { // scores[i] - util[tr] with util ≡ 0
				m += g
			}
		}
		marg[li] = m
	}
}

// applyWinnerDeltas absorbs the previous round's winner into one shard's
// marginals — the exact update loop of Algorithm 1 lines 11–17, restricted
// to the sites this shard owns. Stale deltas also land in selected (and
// non-winner) slots: those marginals are never read again, and dropping
// the selected[li] load removes a random byte access per covering pair.
func applyWinnerDeltas(cs *tops.CoverSets, marg []float64, deltas []UtilDelta) {
	for _, d := range deltas {
		if int(d.Traj) >= cs.M {
			continue
		}
		sites, scores := cs.SC(d.Traj)
		scores = scores[:len(sites)]
		for i, li := range sites {
			oldGain := scores[i] - d.OldU
			if oldGain <= 0 {
				continue
			}
			newGain := scores[i] - d.NewU
			if newGain < 0 {
				newGain = 0
			}
			marg[li] -= oldGain - newGain
		}
	}
}

// argmaxLocal returns the unselected local representative with the
// greatest (marginal, weight, global index) key — tops.GreaterSite's exact
// total order, so reducing per-shard winners stays bit-equal to a global
// argmax — or -1 when every local representative is selected.
func argmaxLocal(cs *tops.CoverSets, g2l []int32, marg []float64, selected []bool) int {
	weights := cs.Weights
	best := -1
	var bm, bw float64
	var bg int
	for li := range marg {
		if selected[li] {
			continue
		}
		m := marg[li]
		if best >= 0 && !tops.GreaterSite(m, weights[li], int(g2l[li]), bm, bw, bg) {
			continue
		}
		best, bm, bw, bg = li, m, weights[li], int(g2l[li])
	}
	return best
}

// ApplyWinner applies a winning representative's TC list to the gather's
// utility vector: trajectories whose score beats their current utility
// move up, each improvement is recorded as a delta (appended into buf),
// and newly covered trajectories are counted. The exact float sequence of
// Algorithm 1's utility update, exported because the router is a gather.
func ApplyWinner(util []float64, trajs []int32, scores []float64, buf []UtilDelta) ([]UtilDelta, int) {
	covered := 0
	for i, tr := range trajs {
		oldU := util[tr]
		if scores[i] <= oldU {
			continue
		}
		util[tr] = scores[i]
		if oldU == 0 {
			covered++
		}
		buf = append(buf, UtilDelta{Traj: tr, OldU: oldU, NewU: scores[i]})
	}
	return buf, covered
}
