package shard

import (
	"context"
	"encoding/binary"
	"math"
	"sync"
	"testing"

	"netclus/internal/core"
	"netclus/internal/gen"
	"netclus/internal/roadnet"
	"netclus/internal/tops"
	"netclus/internal/trajectory"
)

// fuzzState is one shared sharded engine for the fuzz battery. The engine
// is thread-safe and every driven operation must keep it consistent, so
// reusing it across fuzz executions both speeds the fuzz loop up and
// compounds state: later executions run against whatever site/trajectory
// churn earlier ones left behind.
var (
	fuzzOnce sync.Once
	fuzzEng  *Sharded
	fuzzGrid Partitioner
)

func fuzzFixture(t testing.TB) (*Sharded, Partitioner) {
	t.Helper()
	fuzzOnce.Do(func() {
		city, err := gen.GenerateCity(gen.CityConfig{
			Topology: gen.GridMesh, Nodes: 150, SpanKm: 6, Jitter: 0.2, Seed: 601,
		})
		if err != nil {
			t.Fatal(err)
		}
		store, err := gen.GenerateTrajectories(city, gen.TrajConfig{Count: 20, Seed: 602})
		if err != nil {
			t.Fatal(err)
		}
		sites, err := gen.SampleSites(city.Graph, gen.SiteConfig{Count: 40, Seed: 603})
		if err != nil {
			t.Fatal(err)
		}
		inst, err := tops.NewInstance(city.Graph, store, sites)
		if err != nil {
			t.Fatal(err)
		}
		fuzzEng, err = Build(inst, Options{Shards: 3, Build: core.Options{Gamma: 0.75, TauMin: 0.3, TauMax: 4.8}})
		if err != nil {
			t.Fatal(err)
		}
		fuzzGrid, err = NewPartitioner(GridPartitioner, 3, inst.G)
		if err != nil {
			t.Fatal(err)
		}
	})
	return fuzzEng, fuzzGrid
}

// FuzzShardRouter holds the partitioner and scatter/merge path to a
// "reject or serve, never panic" contract under adversarial site and
// trajectory ids, hostile k/τ values, and arbitrary op interleavings. The
// input is consumed as a little op stream: one op byte, then 4-byte
// operands.
func FuzzShardRouter(f *testing.F) {
	f.Add([]byte{0, 0xff, 0xff, 0xff, 0xff, 1, 0, 0, 0, 0})
	f.Add([]byte{2, 7, 0, 0, 0, 3, 200, 0, 0, 0, 4, 5, 0, 0, 0})
	f.Add([]byte{5, 0x00, 0x00, 0x80, 0x7f, 6, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{1, 12, 0, 0, 0, 0, 12, 0, 0, 0, 2, 12, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, grid := fuzzFixture(t)
		ctx := context.Background()
		pos := 0
		next := func() (uint32, bool) {
			if pos+4 > len(data) {
				return 0, false
			}
			v := binary.LittleEndian.Uint32(data[pos:])
			pos += 4
			return v, true
		}
		for pos < len(data) {
			op := data[pos]
			pos++
			switch op % 7 {
			case 0: // partitioner probes with a raw id
				raw, ok := next()
				if !ok {
					return
				}
				v := roadnet.NodeID(int32(raw))
				for _, p := range []Partitioner{s.part, grid} {
					if j := p.Shard(v); j < 0 || j >= p.Shards() {
						t.Fatalf("partitioner %s mapped node %d to shard %d of %d", p.Name(), v, j, p.Shards())
					}
				}
			case 1: // add a site at a raw id (errors allowed, panics not)
				raw, ok := next()
				if !ok {
					return
				}
				_ = s.AddSite(roadnet.NodeID(int32(raw)))
			case 2: // delete a site at a raw id
				raw, ok := next()
				if !ok {
					return
				}
				_ = s.DeleteSite(roadnet.NodeID(int32(raw)))
			case 3: // delete a trajectory at a raw id
				raw, ok := next()
				if !ok {
					return
				}
				_ = s.DeleteTrajectory(trajectory.ID(int32(raw)))
			case 4: // ingest a two-node trajectory from raw ids
				a, ok := next()
				if !ok {
					return
				}
				b, ok := next()
				if !ok {
					return
				}
				tr, err := trajectory.New(s.g, []roadnet.NodeID{roadnet.NodeID(int32(a) % 150), roadnet.NodeID(int32(b) % 150)})
				if err == nil {
					_, _ = s.AddTrajectory(tr)
				}
			case 5: // query with hostile k and τ (NaN, ±Inf, huge, negative)
				kraw, ok := next()
				if !ok {
					return
				}
				traw, ok := next()
				if !ok {
					return
				}
				tau := float64(math.Float32frombits(traw))
				_, _ = s.Query(ctx, core.QueryOptions{K: int(int32(kraw)), Pref: tops.Binary(tau)})
			default: // batch with a duplicated hostile query
				kraw, ok := next()
				if !ok {
					return
				}
				q := core.QueryOptions{K: int(int32(kraw % 64)), Pref: tops.Linear(0.2 + float64(kraw%400)/100)}
				items := s.QueryBatch(ctx, []core.QueryOptions{q, q})
				if (items[0].Err == nil) != (items[1].Err == nil) {
					t.Fatalf("identical batch items diverged: %v vs %v", items[0].Err, items[1].Err)
				}
			}
		}
	})
}
