package shard

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"netclus/internal/core"
	"netclus/internal/engine"
	"netclus/internal/roadnet"
	"netclus/internal/tops"
	"netclus/internal/trajectory"
	"netclus/internal/wal"
)

// Options configures a sharded engine.
type Options struct {
	// Shards is the number of engine shards N (>= 1).
	Shards int
	// Partitioner selects the site partitioner by name: "hash" (default)
	// or "grid".
	Partitioner string
	// Build configures every per-shard index build. TauMin/TauMax are
	// derived ONCE from the full site set when zero, so all shards share
	// one ladder (and match a single-shard build of the same dataset).
	Build core.Options
	// Engine configures the per-shard engines (cover caching policy) and
	// supplies BatchWorkers for the gather's QueryBatch fan-out.
	Engine engine.Options
}

// shardState is one engine shard plus its serving gauges.
type shardState struct {
	eng  *engine.Engine
	inst *tops.Instance // shard dataset: shared graph, cloned store, owned sites

	scatters atomic.Uint64 // masked cover fetches served
	inFlight atomic.Int64  // scatter fetches currently executing (queue depth)
	updates  atomic.Uint64 // §6 mutations routed here
}

// Sharded is a scatter-gather engine over N site-partitioned shards. It
// serves the same Query / QueryBatch / Stats / Snapshot surface as
// engine.Engine and is bit-exact against it: for any sequential workload of
// queries and §6 updates, selected sites, dense site ids, and estimated
// utilities are identical to a single-shard engine over the same dataset
// (enforced by the shard-differential oracle).
//
// All exported methods are safe for concurrent use. Queries share a read
// lock; updates take the write lock, route to the owning shard (site
// mutations) or broadcast (trajectory mutations), and patch the cluster
// ownership tables in place (a site mutation can move only the
// representative of its own cluster per instance).
type Sharded struct {
	mu     sync.RWMutex
	g      *roadnet.Graph
	part   Partitioner
	shards []*shardState
	opts   Options

	// Global dense site-id mirror: replicates the single-shard index's
	// bookkeeping (append on add, swap-remove on delete) over the full
	// site set, so QueryResult.SiteIDs match the single-shard engine.
	sites  []roadnet.NodeID
	siteID map[roadnet.NodeID]int32

	// Cluster ownership per ladder instance, derived lazily and dropped on
	// every site mutation.
	ownMu sync.Mutex
	own   map[int]*ownership

	// sink receives the global mutation stream when a log is attached (the
	// per-shard engines never log: the Sharded layer is the system of
	// record, so one logical mutation is one record regardless of shard
	// count). See wal.Sink for the commit/guard/replay discipline.
	sink wal.Sink

	queries      atomic.Uint64
	batchQueries atomic.Uint64
	batches      atomic.Uint64
	updateCount  atomic.Uint64
	siteAdds     atomic.Uint64
	siteDeletes  atomic.Uint64
	trajAdds     atomic.Uint64
	trajDeletes  atomic.Uint64
	errorCount   atomic.Uint64
	canceled     atomic.Uint64
	coverNanos   atomic.Int64
	greedyNanos  atomic.Int64

	// gatherOrder is a test hook: when non-nil it permutes the order the
	// gather enumerates shards in, to assert enumeration-order invariance.
	gatherOrder []int
}

// Build partitions inst's candidate sites across opts.Shards shards, builds
// one NETCLUS index per shard (same graph, replicated trajectories, owned
// sites only) and wraps each in an engine. The per-shard builds run
// concurrently, splitting opts.Build.Workers between them.
func Build(inst *tops.Instance, opts Options) (*Sharded, error) {
	if inst == nil {
		return nil, fmt.Errorf("shard: nil instance")
	}
	if opts.Shards < 1 {
		return nil, fmt.Errorf("shard: shard count %d must be >= 1", opts.Shards)
	}
	part, err := NewPartitioner(opts.Partitioner, opts.Shards, inst.G)
	if err != nil {
		return nil, err
	}
	// One ladder for every shard: derive the τ range from the FULL site
	// set up front, exactly as core.Build would.
	if opts.Build.TauMin <= 0 || opts.Build.TauMax <= 0 {
		tmin, tmax := core.EstimateTauRange(inst)
		if opts.Build.TauMin <= 0 {
			opts.Build.TauMin = tmin
		}
		if opts.Build.TauMax <= 0 {
			opts.Build.TauMax = tmax
		}
	}
	if opts.Build.TauMin >= opts.Build.TauMax {
		return nil, fmt.Errorf("shard: τmin %v >= τmax %v", opts.Build.TauMin, opts.Build.TauMax)
	}
	insts := shardInstances(part, inst)

	// Split the worker budget across concurrent shard builds.
	workers := opts.Build.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	perShard := workers / opts.Shards
	if perShard < 1 {
		perShard = 1
	}
	idxs := make([]*core.Index, opts.Shards)
	errs := make([]error, opts.Shards)
	var wg sync.WaitGroup
	for j := range insts {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			bopts := opts.Build
			bopts.Workers = perShard
			idxs[j], errs[j] = core.Build(insts[j], bopts)
		}(j)
	}
	wg.Wait()
	for j, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard: building shard %d: %w", j, err)
		}
	}
	return assemble(inst, part, insts, idxs, opts)
}

// shardInstances derives the per-shard problem instances: the shared graph,
// an independent clone of the trajectory store (so dynamic additions assign
// identical ids everywhere), and the sites the partitioner routes to the
// shard, in their original relative order.
func shardInstances(part Partitioner, inst *tops.Instance) []*tops.Instance {
	n := part.Shards()
	bySite := make([][]roadnet.NodeID, n)
	for _, v := range inst.Sites {
		j := part.Shard(v)
		bySite[j] = append(bySite[j], v)
	}
	out := make([]*tops.Instance, n)
	for j := 0; j < n; j++ {
		out[j] = &tops.Instance{G: inst.G, Trajs: inst.Trajs.Clone(), Sites: bySite[j]}
	}
	return out
}

// assemble wires pre-built per-shard indexes into a Sharded engine,
// validating that all shards share one ladder.
func assemble(inst *tops.Instance, part Partitioner, insts []*tops.Instance, idxs []*core.Index, opts Options) (*Sharded, error) {
	s := &Sharded{
		g:      inst.G,
		part:   part,
		opts:   opts,
		sites:  append([]roadnet.NodeID(nil), inst.Sites...),
		siteID: make(map[roadnet.NodeID]int32, len(inst.Sites)),
		own:    make(map[int]*ownership),
	}
	for i, v := range s.sites {
		s.siteID[v] = int32(i)
	}
	var tmin0, tmax0, gamma0 float64
	var rungs0 int
	for j, idx := range idxs {
		tmin, tmax := idx.TauRange()
		if j == 0 {
			tmin0, tmax0, gamma0, rungs0 = tmin, tmax, idx.Gamma(), len(idx.Instances)
		} else if tmin != tmin0 || tmax != tmax0 || idx.Gamma() != gamma0 || len(idx.Instances) != rungs0 {
			return nil, fmt.Errorf("shard: shard %d ladder (γ=%v τ=[%v,%v) rungs=%d) differs from shard 0 (γ=%v τ=[%v,%v) rungs=%d)",
				j, idx.Gamma(), tmin, tmax, len(idx.Instances), gamma0, tmin0, tmax0, rungs0)
		}
		eng, err := engine.New(idx, opts.Engine)
		if err != nil {
			return nil, fmt.Errorf("shard: shard %d engine: %w", j, err)
		}
		s.shards = append(s.shards, &shardState{eng: eng, inst: insts[j]})
	}
	return s, nil
}

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// Graph returns the shared road network.
func (s *Sharded) Graph() *roadnet.Graph { return s.g }

// Sites returns a copy of the current global site list in dense-id order —
// the site list a snapshot load must be presented with (together with the
// trajectory store) after §6 mutations, mirroring the single-shard
// contract that a snapshot re-attaches only to the exact dataset it was
// taken from.
func (s *Sharded) Sites() []roadnet.NodeID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]roadnet.NodeID(nil), s.sites...)
}

// winner is one cluster's globally best representative: the shard holding
// it and the representative node.
type winner struct {
	cluster core.ClusterID
	shard   int32
	node    roadnet.NodeID
}

// ownership maps one ladder instance's clusters to their owning shards. The
// winners slice is ascending by cluster, so position i is exactly the dense
// representative index i of a single-shard query on the same instance.
type ownership struct {
	winners []winner
	masks   [][]core.ClusterID // per shard: owned clusters, ascending
}

// ownership derives (or returns the cached) cluster ownership of instance
// p: per cluster, the shard whose representative has minimal (dr, node) —
// the exact tie-break of the single-shard representative choice, so the
// union of owned representatives is the single-shard representative set.
// The reduction runs over dense per-cluster slices (cluster ids are dense
// int32s), and emitting in cluster order makes the winner list sorted by
// construction.
func (s *Sharded) ownership(p int) *ownership {
	s.ownMu.Lock()
	defer s.ownMu.Unlock()
	if o := s.own[p]; o != nil {
		return o
	}
	infos := make([][]core.RepInfo, len(s.shards))
	maxCi := core.ClusterID(-1)
	for j, sh := range s.shards {
		infos[j] = sh.eng.RepInfos(p)
		for _, ri := range infos[j] {
			if ri.Cluster > maxCi {
				maxCi = ri.Cluster
			}
		}
	}
	n := int(maxCi) + 1
	bestShard := make([]int32, n)
	bestNode := make([]roadnet.NodeID, n)
	bestDr := make([]float64, n)
	for i := range bestShard {
		bestShard[i] = -1
	}
	for j, ris := range infos {
		for _, ri := range ris {
			c := ri.Cluster
			if bestShard[c] < 0 || ri.Dr < bestDr[c] || (ri.Dr == bestDr[c] && ri.Node < bestNode[c]) {
				bestShard[c], bestNode[c], bestDr[c] = int32(j), ri.Node, ri.Dr
			}
		}
	}
	o := &ownership{masks: make([][]core.ClusterID, len(s.shards))}
	for c := 0; c < n; c++ {
		if bestShard[c] < 0 {
			continue
		}
		o.winners = append(o.winners, winner{cluster: core.ClusterID(c), shard: bestShard[c], node: bestNode[c]})
		o.masks[bestShard[c]] = append(o.masks[bestShard[c]], core.ClusterID(c))
	}
	s.own[p] = o
	return o
}

// updateOwnershipAt refreshes the cached ownership tables after a site
// mutation at node v. A site add/delete moves representatives only inside
// v's cluster at each instance (core's §6 update rule), so instead of
// dropping the tables — which would force a full cross-shard re-reduction
// per query after every update — the one affected cluster's winner is
// re-reduced in place. Runs under the write lock: no query holds a gather
// in flight while the winner list and masks are spliced.
func (s *Sharded) updateOwnershipAt(v roadnet.NodeID) {
	s.ownMu.Lock()
	defer s.ownMu.Unlock()
	for p, own := range s.own {
		ci := s.shards[0].eng.ClusterOf(p, v)
		if ci == core.InvalidCluster {
			continue
		}
		var nw winner
		var nwDr float64
		has := false
		for j, sh := range s.shards {
			ri, ok := sh.eng.RepOfCluster(p, ci)
			if !ok {
				continue
			}
			if !has || ri.Dr < nwDr || (ri.Dr == nwDr && ri.Node < nw.node) {
				nw = winner{cluster: ci, shard: int32(j), node: ri.Node}
				nwDr = ri.Dr
				has = true
			}
		}
		pos := sort.Search(len(own.winners), func(i int) bool { return own.winners[i].cluster >= ci })
		had := pos < len(own.winners) && own.winners[pos].cluster == ci
		switch {
		case has && had:
			old := own.winners[pos]
			own.winners[pos] = nw
			if old.shard != nw.shard {
				own.masks[old.shard] = maskRemove(own.masks[old.shard], ci)
				own.masks[nw.shard] = maskInsert(own.masks[nw.shard], ci)
			}
		case has && !had:
			own.winners = append(own.winners, winner{})
			copy(own.winners[pos+1:], own.winners[pos:])
			own.winners[pos] = nw
			own.masks[nw.shard] = maskInsert(own.masks[nw.shard], ci)
		case !has && had:
			old := own.winners[pos]
			own.winners = append(own.winners[:pos], own.winners[pos+1:]...)
			own.masks[old.shard] = maskRemove(own.masks[old.shard], ci)
		}
	}
}

// maskInsert adds ci to a sorted cluster mask.
func maskInsert(mask []core.ClusterID, ci core.ClusterID) []core.ClusterID {
	pos := sort.Search(len(mask), func(i int) bool { return mask[i] >= ci })
	if pos < len(mask) && mask[pos] == ci {
		return mask
	}
	mask = append(mask, 0)
	copy(mask[pos+1:], mask[pos:])
	mask[pos] = ci
	return mask
}

// maskRemove deletes ci from a sorted cluster mask.
func maskRemove(mask []core.ClusterID, ci core.ClusterID) []core.ClusterID {
	pos := sort.Search(len(mask), func(i int) bool { return mask[i] >= ci })
	if pos < len(mask) && mask[pos] == ci {
		return append(mask[:pos], mask[pos+1:]...)
	}
	return mask
}

// gatherSet is one scatter's result: per-shard masked covers plus the
// local→global dense index mapping that stitches them into the single-shard
// representative space.
type gatherSet struct {
	own *ownership
	n   int // number of winners == single-shard representative count
	m   int // trajectory universe size (max over shard covers)
	loc []*shardCover
}

// shardCover is one shard's slice of the query: its masked cover and the
// mapping from its local dense representative index to the global one.
type shardCover struct {
	shard int
	cs    *tops.CoverSets
	g2l   []int32 // local rep index -> global winner index, -1 = not a winner
}

// scatter fetches every owning shard's masked cover for (p, ψ) — in
// parallel when the machine has the cores for it — and builds the gather
// set. Cover wall time is accounted to the cover phase.
func (s *Sharded) scatter(ctx context.Context, p int, pref tops.Preference, own *ownership, parallel bool) (*gatherSet, error) {
	t0 := time.Now()
	defer func() { s.coverNanos.Add(time.Since(t0).Nanoseconds()) }()

	type fetch struct {
		cs   *tops.CoverSets
		reps []core.ClusterID
		err  error
	}
	fetches := make([]fetch, len(s.shards))
	run := func(j int) {
		sh := s.shards[j]
		sh.scatters.Add(1)
		sh.inFlight.Add(1)
		defer sh.inFlight.Add(-1)
		fetches[j].cs, fetches[j].reps, fetches[j].err = sh.eng.CoverMasked(ctx, p, pref, own.masks[j])
	}
	active := make([]int, 0, len(s.shards))
	for j := range s.shards {
		if len(own.masks[j]) > 0 {
			active = append(active, j)
		}
	}
	if parallel && len(active) > 1 {
		var wg sync.WaitGroup
		for _, j := range active {
			wg.Add(1)
			go func(j int) { defer wg.Done(); run(j) }(j)
		}
		wg.Wait()
	} else {
		for _, j := range active {
			run(j)
		}
	}

	gs := &gatherSet{own: own, n: len(own.winners)}
	// globalIdx[cluster] via merge: winners and each shard's returned reps
	// are both ascending by cluster.
	order := active
	if s.gatherOrder != nil {
		order = make([]int, 0, len(active))
		for _, j := range s.gatherOrder {
			for _, a := range active {
				if a == j {
					order = append(order, j)
				}
			}
		}
	}
	for _, j := range order {
		f := fetches[j]
		if f.err != nil {
			return nil, f.err
		}
		sc := &shardCover{shard: j, cs: f.cs, g2l: make([]int32, len(f.reps))}
		wi := 0
		for li, ci := range f.reps {
			sc.g2l[li] = -1
			for wi < gs.n && own.winners[wi].cluster < ci {
				wi++
			}
			if wi < gs.n && own.winners[wi].cluster == ci && own.winners[wi].shard == int32(j) {
				sc.g2l[li] = int32(wi)
				wi++
			}
		}
		if f.cs.M > gs.m {
			gs.m = f.cs.M
		}
		gs.loc = append(gs.loc, sc)
	}
	return gs, nil
}

// accountErr classifies a failure into the error/canceled counters.
func (s *Sharded) accountErr(err error) error {
	if err != nil {
		s.errorCount.Add(1)
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			s.canceled.Add(1)
		}
	}
	return err
}

// Query answers one TOPS query by scatter-gather, bit-exact against the
// single-shard engine. The context cancels the scatter at the shard fills'
// checkpoints and is re-checked before the gather greedy.
func (s *Sharded) Query(ctx context.Context, opts core.QueryOptions) (*core.QueryResult, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	res, err := s.serve(ctx, opts, runtime.GOMAXPROCS(0) > 1)
	if err == nil {
		s.queries.Add(1)
	}
	return res, s.accountErr(err)
}

func (s *Sharded) serve(ctx context.Context, opts core.QueryOptions, parallel bool) (*core.QueryResult, error) {
	if err := opts.Pref.Validate(); err != nil {
		return nil, err
	}
	if opts.K <= 0 {
		return nil, fmt.Errorf("shard: k = %d must be positive", opts.K)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p := s.shards[0].eng.InstanceFor(opts.Pref.Tau)
	own := s.ownership(p)
	gs, err := s.scatter(ctx, p, opts.Pref, own, parallel)
	if err != nil {
		return nil, err
	}
	return s.answer(ctx, gs, p, opts, parallel)
}

// answer runs the gather phase: the distributed greedy on the common path,
// or the merged-cover fallback for query modes with extra greedy state (FM
// sketches, lazy evaluation, existing services, target coverage).
func (s *Sharded) answer(ctx context.Context, gs *gatherSet, p int, opts core.QueryOptions, parallel bool) (*core.QueryResult, error) {
	if gs.n == 0 {
		return nil, fmt.Errorf("shard: instance %d has no cluster representatives (no candidate sites?)", p)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	k := opts.K
	if k > gs.n {
		k = gs.n
	}
	t0 := time.Now()
	defer func() { s.greedyNanos.Add(time.Since(t0).Nanoseconds()) }()

	var res tops.Result
	var err error
	var g *greedyScratch
	if opts.UseFM || opts.Greedy.Lazy || len(opts.Greedy.InitialSites) > 0 || opts.Greedy.TargetCoverage > 0 {
		cs := gs.merged()
		if opts.UseFM {
			res, err = tops.FMGreedy(cs, tops.FMGreedyOptions{K: k, F: opts.F, Seed: opts.Seed})
		} else {
			gopts := opts.Greedy
			gopts.K = k
			if gopts.TargetCoverage > 0 {
				gopts.K = gs.n
			}
			res, err = tops.IncGreedy(cs, gopts)
		}
		if err != nil {
			return nil, err
		}
	} else {
		if s.opts.Engine.DisablePooling {
			g = new(greedyScratch)
		} else {
			g = greedyScratchPool.Get().(*greedyScratch)
		}
		res = gs.greedy(k, parallel, g)
	}

	var out *core.QueryResult
	if s.opts.Engine.DisablePooling {
		out = &core.QueryResult{}
	} else {
		out = core.AcquireQueryResult()
	}
	out.EstimatedUtility = res.Utility
	out.EstimatedCovered = res.Covered
	out.InstanceUsed = p
	out.NumRepresentatives = gs.n
	for _, ri := range res.Selected {
		w := gs.own.winners[ri]
		out.Sites = append(out.Sites, w.node)
		sid := tops.InvalidSiteID
		if id, ok := s.siteID[w.node]; ok {
			sid = tops.SiteID(id)
		}
		out.SiteIDs = append(out.SiteIDs, sid)
	}
	if g != nil && !s.opts.Engine.DisablePooling {
		// res.Selected (aliasing g.sel) is fully consumed above, so the
		// scratch can recycle.
		g.release()
	}
	return out, nil
}

// merged stitches the per-shard covers into one global CoverSets in the
// single-shard dense representative space. TC slices are borrowed until
// Finalize copies them (the shard covers are read-only for the query's
// lifetime); weights recompute through the same left-to-right summation
// the single-shard fill performs, so they carry identical bits.
func (gs *gatherSet) merged() *tops.CoverSets {
	cs := tops.NewCoverSets(gs.n, gs.m)
	for _, sc := range gs.loc {
		for li, gi := range sc.g2l {
			if gi >= 0 {
				trajs, scores := sc.cs.TC(int32(li))
				cs.SetTCArrays(gi, trajs, scores)
			}
		}
	}
	cs.Finalize()
	return cs
}

// QueryBatch answers many queries under one read lock, scattering once per
// (ladder instance, ψ fingerprint) group and fanning the gather greedies
// across Engine.BatchWorkers, mirroring engine.QueryBatch.
func (s *Sharded) QueryBatch(ctx context.Context, qs []core.QueryOptions) []engine.BatchItem {
	out := make([]engine.BatchItem, len(qs))
	if len(qs) == 0 {
		return out
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.batches.Add(1)

	type groupKey struct {
		p  int
		fp uint64
	}
	groups := make(map[groupKey][]int)
	for i, q := range qs {
		if err := q.Pref.Validate(); err != nil {
			out[i].Err = s.accountErr(err)
			continue
		}
		if q.K <= 0 {
			out[i].Err = s.accountErr(fmt.Errorf("shard: k = %d must be positive", q.K))
			continue
		}
		key := groupKey{p: s.shards[0].eng.InstanceFor(q.Pref.Tau), fp: core.PrefFingerprint(q.Pref)}
		groups[key] = append(groups[key], i)
	}

	workers := s.opts.Engine.BatchWorkers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for key, members := range groups {
		own := s.ownership(key.p)
		gs, err := s.scatter(ctx, key.p, qs[members[0]].Pref, own, true)
		if err != nil {
			for _, i := range members {
				out[i].Err = s.accountErr(err)
			}
			continue
		}
		for _, i := range members {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				// The per-query gather runs its rounds inline: parallelism
				// comes from the fan-out across batch members here.
				out[i].Result, out[i].Err = s.answer(ctx, gs, key.p, qs[i], false)
				if out[i].Err == nil {
					s.batchQueries.Add(1)
				} else {
					s.accountErr(out[i].Err)
				}
			}(i)
		}
	}
	wg.Wait()
	return out
}

// Mutations. Site updates route to the owning shard; trajectory updates
// broadcast (every shard's trajectory lists carry every trajectory). All
// run under the write lock, so queries drain first and ownership
// invalidation is fenced. With a WAL attached the discipline mirrors
// engine.Engine: apply, then append the record, then acknowledge — one
// record per logical mutation, independent of shard count, so a sharded
// primary's log replays identically into any follower topology.

// guardLog rejects mutations after a log append failure.
func (s *Sharded) guardLog() error { return s.sink.Guard() }

// commit appends the record for a mutation just applied and stamps the
// engine with the assigned LSN. Caller holds the write lock.
func (s *Sharded) commit(kind wal.Kind, body []byte) error {
	_, err := s.sink.Commit(kind, body)
	return err
}

// AddSite registers a new candidate site on its owning shard.
func (s *Sharded) AddSite(v roadnet.NodeID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.guardLog(); err != nil {
		return err
	}
	if err := s.addSiteLocked(v); err != nil {
		return err
	}
	s.updateCount.Add(1)
	s.siteAdds.Add(1)
	return s.commit(wal.KindAddSite, wal.NodeBody(int64(v)))
}

func (s *Sharded) addSiteLocked(v roadnet.NodeID) error {
	j := s.part.Shard(v)
	sh := s.shards[j]
	if err := sh.eng.AddSite(v); err != nil {
		return err
	}
	sh.updates.Add(1)
	s.sites = append(s.sites, v)
	s.siteID[v] = int32(len(s.sites) - 1)
	s.updateOwnershipAt(v)
	return nil
}

// DeleteSite removes a candidate site from its owning shard, mirroring the
// single-shard swap-remove dense-id bookkeeping globally.
func (s *Sharded) DeleteSite(v roadnet.NodeID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.guardLog(); err != nil {
		return err
	}
	if err := s.deleteSiteLocked(v); err != nil {
		return err
	}
	s.updateCount.Add(1)
	s.siteDeletes.Add(1)
	return s.commit(wal.KindDeleteSite, wal.NodeBody(int64(v)))
}

func (s *Sharded) deleteSiteLocked(v roadnet.NodeID) error {
	j := s.part.Shard(v)
	sh := s.shards[j]
	if err := sh.eng.DeleteSite(v); err != nil {
		return err
	}
	sh.updates.Add(1)
	slot := s.siteID[v]
	last := len(s.sites) - 1
	if moved := s.sites[last]; moved != v {
		s.sites[slot] = moved
		s.siteID[moved] = slot
	}
	s.sites = s.sites[:last]
	delete(s.siteID, v)
	s.updateOwnershipAt(v)
	return nil
}

// AddSites registers a batch of candidate sites, validated as a whole
// up front (all-or-nothing, like the single-shard batch path) and then
// routed per owning shard.
func (s *Sharded) AddSites(nodes []roadnet.NodeID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.guardLog(); err != nil {
		return err
	}
	if err := s.addSitesLocked(nodes); err != nil {
		return err
	}
	s.updateCount.Add(1)
	s.siteAdds.Add(uint64(len(nodes)))
	ids := make([]int64, len(nodes))
	for i, v := range nodes {
		ids[i] = int64(v)
	}
	return s.commit(wal.KindAddSites, wal.IDListBody(ids))
}

func (s *Sharded) addSitesLocked(nodes []roadnet.NodeID) error {
	dup := make(map[roadnet.NodeID]bool, len(nodes))
	for _, v := range nodes {
		if v < 0 || int(v) >= s.g.NumNodes() {
			return fmt.Errorf("shard: AddSites: node %d outside graph", v)
		}
		if _, ok := s.siteID[v]; ok {
			return fmt.Errorf("shard: AddSites: node %d is already a site", v)
		}
		if dup[v] {
			return fmt.Errorf("shard: AddSites: node %d listed twice", v)
		}
		dup[v] = true
	}
	byShard := make([][]roadnet.NodeID, len(s.shards))
	for _, v := range nodes {
		j := s.part.Shard(v)
		byShard[j] = append(byShard[j], v)
	}
	for j, group := range byShard {
		if len(group) == 0 {
			continue
		}
		s.shards[j].updates.Add(1)
		if err := s.shards[j].eng.AddSites(group); err != nil {
			// Unreachable after the validation above; surface loudly if a
			// shard still disagrees, because state has diverged.
			return fmt.Errorf("shard: AddSites: shard %d rejected a pre-validated batch: %w", j, err)
		}
	}
	for _, v := range nodes {
		s.sites = append(s.sites, v)
		s.siteID[v] = int32(len(s.sites) - 1)
		s.updateOwnershipAt(v)
	}
	return nil
}

// broadcast applies one trajectory mutation to every shard. The first shard
// validates before mutating (core's contract), so an invalid request fails
// cleanly with no shard touched; shards past the first share identical
// trajectory state, so they cannot disagree with it.
func (s *Sharded) broadcast(apply func(sh *shardState) error) error {
	for j, sh := range s.shards {
		sh.updates.Add(1)
		if err := apply(sh); err != nil {
			if j > 0 {
				return fmt.Errorf("shard: shard %d diverged during a trajectory broadcast: %w", j, err)
			}
			return err
		}
	}
	return nil
}

// AddTrajectory ingests one trajectory into every shard; all shards assign
// the same id (their stores are clones of one origin).
func (s *Sharded) AddTrajectory(tr *trajectory.Trajectory) (trajectory.ID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.guardLog(); err != nil {
		return 0, err
	}
	tid, err := s.addTrajectoryLocked(tr)
	if err != nil {
		return 0, err
	}
	s.updateCount.Add(1)
	s.trajAdds.Add(1)
	return tid, s.commit(wal.KindAddTrajectory, wal.TrajectoryBody(tr))
}

func (s *Sharded) addTrajectoryLocked(tr *trajectory.Trajectory) (trajectory.ID, error) {
	var tid trajectory.ID
	first := true
	err := s.broadcast(func(sh *shardState) error {
		id, err := sh.eng.AddTrajectory(tr)
		if err != nil {
			return err
		}
		if first {
			tid, first = id, false
		} else if id != tid {
			return fmt.Errorf("assigned id %d, expected %d", id, tid)
		}
		return nil
	})
	return tid, err
}

// DeleteTrajectory removes one trajectory from every shard.
func (s *Sharded) DeleteTrajectory(tid trajectory.ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.guardLog(); err != nil {
		return err
	}
	if err := s.broadcast(func(sh *shardState) error { return sh.eng.DeleteTrajectory(tid) }); err != nil {
		return err
	}
	s.updateCount.Add(1)
	s.trajDeletes.Add(1)
	return s.commit(wal.KindDeleteTrajectory, wal.NodeBody(int64(tid)))
}

// AddTrajectories ingests a batch of trajectories into every shard.
func (s *Sharded) AddTrajectories(trs []*trajectory.Trajectory) ([]trajectory.ID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.guardLog(); err != nil {
		return nil, err
	}
	var ids []trajectory.ID
	first := true
	err := s.broadcast(func(sh *shardState) error {
		got, err := sh.eng.AddTrajectories(trs)
		if err != nil {
			return err
		}
		if first {
			ids, first = got, false
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.updateCount.Add(1)
	s.trajAdds.Add(uint64(len(trs)))
	return ids, s.commit(wal.KindAddTrajectories, wal.TrajectoriesBody(trs))
}

// DeleteTrajectories removes a batch of trajectories from every shard.
func (s *Sharded) DeleteTrajectories(ids []trajectory.ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.guardLog(); err != nil {
		return err
	}
	if err := s.broadcast(func(sh *shardState) error { return sh.eng.DeleteTrajectories(ids) }); err != nil {
		return err
	}
	s.updateCount.Add(1)
	s.trajDeletes.Add(uint64(len(ids)))
	raw := make([]int64, len(ids))
	for i, id := range ids {
		raw[i] = int64(id)
	}
	return s.commit(wal.KindDeleteTrajectories, wal.IDListBody(raw))
}

// Durability and replication surface, mirroring engine.Engine's: LSN,
// AttachWAL, ApplyRecord (replay without re-logging), Checkpoint.

// LSN reports the last applied write-ahead-log sequence number.
func (s *Sharded) LSN() uint64 { return s.sink.LSN() }

// Epoch reports the replication fencing token this engine last observed.
func (s *Sharded) Epoch() uint64 { return s.sink.Epoch() }

// RestoreEpoch stamps the epoch recovered from a checkpoint container.
// Load-time only, before any mutations or replay.
func (s *Sharded) RestoreEpoch(epoch uint64) { s.sink.RestoreEpoch(epoch) }

// BeginEpoch opens a new primary term (see engine.Engine.BeginEpoch).
func (s *Sharded) BeginEpoch(epoch uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.guardLog(); err != nil {
		return err
	}
	_, err := s.sink.BeginEpoch(epoch)
	return err
}

// AttachWAL connects the sharded engine to its log. The log must sit
// exactly at the engine's LSN; an empty log is based there.
func (s *Sharded) AttachWAL(l *wal.Log) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sink.Attach(l)
}

// ApplyRecord applies one logged mutation through the sharded routing
// paths without re-logging it — recovery and follower tailing. Records
// must arrive in LSN order.
func (s *Sharded) ApplyRecord(rec wal.Record) error {
	m, err := rec.Mutation()
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.sink.CheckReplay(rec); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	if m.Kind == wal.KindEpoch {
		if err := s.sink.ApplyEpoch(rec); err != nil {
			return fmt.Errorf("shard: replaying LSN %d (%s): %w", rec.LSN, m.Kind, err)
		}
		return nil
	}
	if err := s.applyMutation(m); err != nil {
		return fmt.Errorf("shard: replaying LSN %d (%s): %w", rec.LSN, m.Kind, err)
	}
	s.sink.SetLSN(rec.LSN)
	return nil
}

// applyMutation dispatches a decoded record to the sharded mutation it
// logs. Caller holds the write lock.
func (s *Sharded) applyMutation(m wal.Mutation) error {
	switch m.Kind {
	case wal.KindAddSite:
		if err := s.addSiteLocked(roadnet.NodeID(m.Node)); err != nil {
			return err
		}
		s.siteAdds.Add(1)
	case wal.KindDeleteSite:
		if err := s.deleteSiteLocked(roadnet.NodeID(m.Node)); err != nil {
			return err
		}
		s.siteDeletes.Add(1)
	case wal.KindAddSites:
		nodes := make([]roadnet.NodeID, len(m.Nodes))
		for i, v := range m.Nodes {
			nodes[i] = roadnet.NodeID(v)
		}
		if err := s.addSitesLocked(nodes); err != nil {
			return err
		}
		s.siteAdds.Add(uint64(len(nodes)))
	case wal.KindAddTrajectory:
		tr, err := m.Traj.Trajectory(s.g)
		if err != nil {
			return err
		}
		if _, err := s.addTrajectoryLocked(tr); err != nil {
			return err
		}
		s.trajAdds.Add(1)
	case wal.KindDeleteTrajectory:
		if err := s.broadcast(func(sh *shardState) error { return sh.eng.DeleteTrajectory(trajectory.ID(m.ID)) }); err != nil {
			return err
		}
		s.trajDeletes.Add(1)
	case wal.KindAddTrajectories:
		trs := make([]*trajectory.Trajectory, len(m.Trajs))
		for i, td := range m.Trajs {
			tr, err := td.Trajectory(s.g)
			if err != nil {
				return err
			}
			trs[i] = tr
		}
		err := s.broadcast(func(sh *shardState) error {
			_, err := sh.eng.AddTrajectories(trs)
			return err
		})
		if err != nil {
			return err
		}
		s.trajAdds.Add(uint64(len(trs)))
	case wal.KindDeleteTrajectories:
		ids := make([]trajectory.ID, len(m.Nodes))
		for i, v := range m.Nodes {
			ids[i] = trajectory.ID(v)
		}
		if err := s.broadcast(func(sh *shardState) error { return sh.eng.DeleteTrajectories(ids) }); err != nil {
			return err
		}
		s.trajDeletes.Add(uint64(len(ids)))
	default:
		return fmt.Errorf("shard: unknown mutation kind %s", m.Kind)
	}
	s.updateCount.Add(1)
	return nil
}

// Stats aggregates the scatter-gather engine's counters into the same shape
// the single-shard engine reports (the /statsz wire contract). Cover cache
// counters sum across shards.
func (s *Sharded) Stats() engine.Stats {
	st := engine.Stats{
		Queries:      s.queries.Load(),
		BatchQueries: s.batchQueries.Load(),
		Batches:      s.batches.Load(),
		Updates:      s.updateCount.Load(),
		SiteAdds:     s.siteAdds.Load(),
		SiteDeletes:  s.siteDeletes.Load(),
		TrajAdds:     s.trajAdds.Load(),
		TrajDeletes:  s.trajDeletes.Load(),
		LSN:          s.sink.LSN(),
		Epoch:        s.sink.Epoch(),
		Errors:       s.errorCount.Load(),
		Canceled:     s.canceled.Load(),
		CoverTime:    time.Duration(s.coverNanos.Load()),
		GreedyTime:   time.Duration(s.greedyNanos.Load()),
	}
	for _, sh := range s.shards {
		es := sh.eng.Stats()
		st.CoverHits += es.CoverHits
		st.CoverMisses += es.CoverMisses
		st.CoverEntries += es.CoverEntries
	}
	return st
}

// Stat is one shard's /statsz block: size, cover-cache effectiveness, and
// the scatter queue depth (fetches currently in flight on the shard).
type Stat struct {
	Shard        int    `json:"shard"`
	Sites        int    `json:"sites"`
	Scatters     uint64 `json:"scatter_calls"`
	QueueDepth   int64  `json:"queue_depth"`
	Updates      uint64 `json:"updates"`
	CoverHits    uint64 `json:"cover_hits"`
	CoverMisses  uint64 `json:"cover_misses"`
	CoverEntries int    `json:"cover_entries"`
}

// ShardStats reports per-shard counters (the /statsz "shards" array).
func (s *Sharded) ShardStats() []Stat {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Stat, len(s.shards))
	for j, sh := range s.shards {
		es := sh.eng.Stats()
		out[j] = Stat{
			Shard:        j,
			Sites:        sh.inst.N(),
			Scatters:     sh.scatters.Load(),
			QueueDepth:   sh.inFlight.Load(),
			Updates:      sh.updates.Load(),
			CoverHits:    es.CoverHits,
			CoverMisses:  es.CoverMisses,
			CoverEntries: es.CoverEntries,
		}
	}
	return out
}
