package shard

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"netclus/internal/core"
	"netclus/internal/engine"
	"netclus/internal/tops"
)

// Metamorphic properties of the gather: the answer is an invariant of the
// decomposition. Shard count, partitioner, and the order the gather
// enumerates shards in are all implementation detail; any visible
// difference is a merge bug.

// queryGrid is a fixed probe battery spanning ladder instances and
// preference families.
func queryGrid() []core.QueryOptions {
	var qs []core.QueryOptions
	for _, tau := range []float64{0.4, 0.9, 1.7, 3.1} {
		qs = append(qs,
			core.QueryOptions{K: 1, Pref: tops.Binary(tau)},
			core.QueryOptions{K: 5, Pref: tops.Linear(tau)},
			core.QueryOptions{K: 9, Pref: tops.ConvexQuadratic(tau)},
		)
	}
	return qs
}

func TestShardCountInvariance(t *testing.T) {
	// One engine per shard count over identical datasets; every count must
	// produce the identical answer battery.
	counts := []int{1, 2, 4, 7}
	engines := make([]*Sharded, len(counts))
	for i, n := range counts {
		inst, _ := buildFixture(t, 401)
		engines[i] = shardedEngine(t, inst, n, HashPartitioner)
	}
	ctx := context.Background()
	for _, q := range queryGrid() {
		base, err := engines[0].Query(ctx, q)
		if err != nil {
			t.Fatalf("1-shard query %+v: %v", q, err)
		}
		for i := 1; i < len(counts); i++ {
			got, err := engines[i].Query(ctx, q)
			if err != nil {
				t.Fatalf("%d-shard query: %v", counts[i], err)
			}
			sameAnswer(t, "shard-count invariance", got, base)
		}
	}
}

func TestPartitionerInvariance(t *testing.T) {
	hashInst, _ := buildFixture(t, 409)
	gridInst, _ := buildFixture(t, 409)
	h := shardedEngine(t, hashInst, 4, HashPartitioner)
	g := shardedEngine(t, gridInst, 4, GridPartitioner)
	ctx := context.Background()
	for _, q := range queryGrid() {
		a, err := h.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := g.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		sameAnswer(t, "partitioner invariance", a, b)
	}
}

func TestGatherOrderInvariance(t *testing.T) {
	// The gather's reduce is a strict total order, so permuting the shard
	// enumeration must not change any answer (including under the inline
	// sequential reduce the batch path uses).
	inst, _ := buildFixture(t, 419)
	s := shardedEngine(t, inst, 4, HashPartitioner)
	ctx := context.Background()
	base := make([]*core.QueryResult, 0)
	for _, q := range queryGrid() {
		res, err := s.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		base = append(base, res)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 4; trial++ {
		order := rng.Perm(4)
		s.gatherOrder = order
		for i, q := range queryGrid() {
			res, err := s.Query(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			sameAnswer(t, "gather-order invariance", res, base[i])
		}
	}
	s.gatherOrder = nil
}

// TestShardedDisableCoverCache pins the caching policy pass-through: with
// the per-shard cover cache disabled, every scatter fills fresh (no cache
// contact at all) and the answers still match the cached configuration.
func TestShardedDisableCoverCache(t *testing.T) {
	cachedInst, _ := buildFixture(t, 439)
	uncachedInst, _ := buildFixture(t, 439)
	cached := shardedEngine(t, cachedInst, 3, HashPartitioner)
	uncached, err := Build(uncachedInst, Options{
		Shards: 3, Build: fixtureBuild,
		Engine: engine.Options{DisableCoverCache: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, q := range queryGrid() {
		want, err := cached.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 2; rep++ {
			got, err := uncached.Query(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			sameAnswer(t, "uncached sharded", got, want)
		}
	}
	st := uncached.Stats()
	if st.CoverHits != 0 || st.CoverMisses != 0 || st.CoverEntries != 0 {
		t.Fatalf("uncached sharded engine touched the cover cache: %+v", st)
	}
}

// TestManifestRoundTrip saves a sharded engine through both snapshot
// carriers and verifies the reloaded engines answer identically — before
// and after further §6 updates, which must keep working on a loaded engine.
func TestManifestRoundTrip(t *testing.T) {
	inst, city := buildFixture(t, 421)
	s := shardedEngine(t, inst, 3, GridPartitioner)
	ctx := context.Background()

	// Directory carrier.
	dir := t.TempDir()
	if err := s.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	dirInst, _ := buildFixture(t, 421)
	fromDir, err := LoadDir(dir, dirInst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fromDir.Shards() != 3 {
		t.Fatalf("LoadDir shards = %d, want 3", fromDir.Shards())
	}

	// Stream carrier.
	var buf bytes.Buffer
	if _, err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	streamInst, _ := buildFixture(t, 421)
	fromStream, err := LoadSharded(bytes.NewReader(buf.Bytes()), streamInst, Options{})
	if err != nil {
		t.Fatal(err)
	}

	for _, q := range queryGrid() {
		want, err := s.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		gotDir, err := fromDir.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		sameAnswer(t, "LoadDir round trip", gotDir, want)
		gotStream, err := fromStream.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		sameAnswer(t, "LoadSharded round trip", gotStream, want)
	}

	// A loaded engine stays live: the same update applied to origin and
	// reload must keep them answering identically.
	extra := extraTrajectories(t, city, 1, 5555)[0]
	if _, err := s.AddTrajectory(extra); err != nil {
		t.Fatal(err)
	}
	if _, err := fromDir.AddTrajectory(extra); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteSite(inst.Sites[3]); err != nil {
		t.Fatal(err)
	}
	if err := fromDir.DeleteSite(dirInst.Sites[3]); err != nil {
		t.Fatal(err)
	}
	for _, q := range queryGrid() {
		want, err := s.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := fromDir.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		sameAnswer(t, "post-update round trip", got, want)
	}
}

// TestManifestRoundTripAfterUpdates pins the regression the manifest's
// per-shard site lists exist for: after §6 site deletions the per-shard
// list orders diverge from anything re-partitioning can derive (each
// shard's core swap-removes independently of the global mirror), so a
// snapshot taken AFTER deletions must still reload — against the engine's
// current logical dataset (Sites() order + current trajectory store).
func TestManifestRoundTripAfterUpdates(t *testing.T) {
	inst, city := buildFixture(t, 457)
	s := shardedEngine(t, inst, 3, HashPartitioner)
	ctx := context.Background()

	// Churn: trajectory add plus several deletes across different shards,
	// then an add — the delete of a site on a different shard than the
	// global-last site is the order-divergence trigger.
	extra := extraTrajectories(t, city, 2, 6001)
	if _, err := s.AddTrajectory(extra[0]); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{2, 17, 40, 81} {
		if err := s.DeleteSite(inst.Sites[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AddSite(inst.Sites[2]); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := s.SaveDir(dir); err != nil {
		t.Fatal(err)
	}

	// The load-time dataset is the engine's CURRENT logical dataset: the
	// mirror-ordered site list plus the update-extended trajectory store.
	curTrajs := inst.Trajs.Clone()
	curTrajs.Add(extra[0])
	curInst := &tops.Instance{G: inst.G, Trajs: curTrajs, Sites: s.Sites()}

	fromStream, err := LoadSharded(bytes.NewReader(buf.Bytes()), curInst, Options{})
	if err != nil {
		t.Fatalf("post-update container load: %v", err)
	}
	fromDir, err := LoadDir(dir, curInst, Options{})
	if err != nil {
		t.Fatalf("post-update dir load: %v", err)
	}
	for _, q := range queryGrid() {
		want, err := s.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		gotS, err := fromStream.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		sameAnswer(t, "post-delete container round trip", gotS, want)
		gotD, err := fromDir.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		sameAnswer(t, "post-delete dir round trip", gotD, want)
	}
}

// TestManifestRejects pins the load-time validation: wrong dataset, corrupt
// manifests, and truncated containers error instead of panicking or loading
// silently wrong.
func TestManifestRejects(t *testing.T) {
	inst, _ := buildFixture(t, 431)
	s := shardedEngine(t, inst, 2, HashPartitioner)
	var buf bytes.Buffer
	if _, err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	other, _ := buildFixture(t, 433) // different dataset
	if _, err := LoadSharded(bytes.NewReader(buf.Bytes()), other, Options{}); err == nil {
		t.Fatal("foreign dataset accepted")
	}

	same, _ := buildFixture(t, 431)
	if _, err := LoadSharded(bytes.NewReader(buf.Bytes()[:40]), same, Options{}); err == nil {
		t.Fatal("truncated container accepted")
	}

	corrupt := append([]byte(nil), buf.Bytes()...)
	corrupt[len(corrupt)-9] ^= 0x40 // flip a bit inside the last shard payload
	if _, err := LoadSharded(bytes.NewReader(corrupt), same, Options{}); err == nil {
		t.Fatal("corrupt shard payload accepted")
	}

	if _, err := LoadDir(t.TempDir(), same, Options{}); err == nil {
		t.Fatal("empty directory accepted")
	}
}
