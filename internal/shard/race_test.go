package shard

import (
	"context"
	"io"
	"sync"
	"testing"

	"netclus/internal/core"
	"netclus/internal/roadnet"
	"netclus/internal/tops"
	"netclus/internal/trajectory"
)

// TestShardedEndToEndRace hammers one sharded engine with concurrent
// queries, batches, §6 updates, live snapshots, and stats polls — the
// full serving surface — under the race detector. Afterwards the engine
// must agree with a mirror that saw the same mutation sequence
// sequentially, and the counters must be coherent.
func TestShardedEndToEndRace(t *testing.T) {
	inst, city := buildFixture(t, 503)
	mirrorInst, _ := buildFixture(t, 503)
	s := shardedEngine(t, inst, 4, HashPartitioner)
	mirror := shardedEngine(t, mirrorInst, 4, HashPartitioner)

	taus := []float64{0.4, 0.8, 1.2, 1.6}
	done := make(chan struct{})
	errCh := make(chan error, 64)
	var pollWG sync.WaitGroup
	var wg sync.WaitGroup

	// Query hammers: a fixed iteration budget each, so the churn below is
	// guaranteed to overlap live queries and batches.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				tau := taus[(r+i)%len(taus)]
				if i%3 == 0 {
					items := s.QueryBatch(context.Background(), []core.QueryOptions{
						{K: 2, Pref: tops.Binary(tau)},
						{K: 4, Pref: tops.Linear(tau)},
					})
					for _, it := range items {
						if it.Err != nil {
							errCh <- it.Err
							return
						}
					}
				} else if _, err := s.Query(context.Background(), core.QueryOptions{K: 3, Pref: tops.Binary(tau)}); err != nil {
					errCh <- err
					return
				}
			}
		}(r)
	}
	// Snapshot and stats pollers.
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := s.Snapshot(io.Discard); err != nil {
				errCh <- err
				return
			}
			_ = s.Stats()
			_ = s.ShardStats()
		}
	}()

	// One writer applies a fixed mutation sequence while the readers run.
	extra := extraTrajectories(t, city, 10, 131)
	applySequence := func(eng *Sharded, sites []roadnet.NodeID) error {
		ids, err := eng.AddTrajectories(extra)
		if err != nil {
			return err
		}
		if err := eng.DeleteTrajectories([]trajectory.ID{1, 4, ids[0]}); err != nil {
			return err
		}
		if err := eng.DeleteSite(sites[7]); err != nil {
			return err
		}
		if err := eng.DeleteSite(sites[19]); err != nil {
			return err
		}
		return eng.AddSites([]roadnet.NodeID{sites[7], sites[19]})
	}
	origSites := append([]roadnet.NodeID(nil), inst.Sites...)
	if err := applySequence(s, origSites); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(done)
	pollWG.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	if err := applySequence(mirror, origSites); err != nil {
		t.Fatal(err)
	}
	for _, tau := range taus {
		q := core.QueryOptions{K: 5, Pref: tops.Binary(tau)}
		got, err := s.Query(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := mirror.Query(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		sameAnswer(t, "post-churn", got, want)
	}

	st := s.Stats()
	if st.Queries == 0 || st.Batches == 0 || st.Updates == 0 {
		t.Fatalf("counters did not move: %+v", st)
	}
	var scatters uint64
	for _, ss := range s.ShardStats() {
		scatters += ss.Scatters
		if ss.QueueDepth != 0 {
			t.Fatalf("shard %d reports %d in-flight fetches after drain", ss.Shard, ss.QueueDepth)
		}
	}
	if scatters == 0 {
		t.Fatal("no scatter calls recorded")
	}
}
