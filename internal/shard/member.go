package shard

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"netclus/internal/core"
	"netclus/internal/engine"
	"netclus/internal/roadnet"
	"netclus/internal/tops"
)

// Member is one shard of a router-fronted topology running in its own
// process: a full engine.Engine (WAL, snapshots, followers, promotion all
// unchanged) restricted to the sites its partitioner routes here, plus
// the shard side of the distributed-greedy round protocol (protocol.go).
// The serving layer exposes it under /v1/shard/ when Options.Member is
// set; internal/router speaks the protocol against N of these.
//
// Site mutations are validated against ownership: a node another shard
// owns is rejected, because applying it here would diverge this member's
// partition from the topology the router derives from the partitioner.
type Member struct {
	*engine.Engine
	part  Partitioner
	index int

	// initialSites is the full global site order at build time (nil on a
	// member recovered from a checkpoint, which no longer knows it); the
	// router seeds its dense-id mirror from it.
	initialSites []roadnet.NodeID

	sesMu     sync.Mutex
	sessions  map[string]*memberSession
	lastSweep time.Time
}

// memberSession is one query's per-shard round state: the immutable
// masked-cover snapshot taken at start, the marginals and selection mask
// the rounds evolve, and the last candidate reported (so a step naming it
// as the winner can mark it selected).
type memberSession struct {
	mu       sync.Mutex
	cs       *tops.CoverSets
	g2l      []int32
	marg     []float64
	selected []bool
	lastLI   int // local index of the last reported candidate; -1 none
	lastGI   int32
	touched  time.Time
}

// sessionTTL expires sessions a crashed or partitioned gather never ended.
const sessionTTL = 2 * time.Minute

// ErrUnknownSession reports a step or end against a session this member
// does not hold (expired, never started here, or started on a different
// process after a failover) — the gather aborts and restarts the query.
var ErrUnknownSession = errors.New("shard: unknown query session")

// NewMember wraps an engine as shard index of shards under the named
// partitioner. initialSites, when known, is the full global site order
// the topology was built from (reported in Meta for the router's dense-id
// mirror).
func NewMember(eng *engine.Engine, shards, index int, partitioner string, initialSites []roadnet.NodeID) (*Member, error) {
	if eng == nil {
		return nil, fmt.Errorf("shard: member needs an engine")
	}
	if index < 0 || index >= shards {
		return nil, fmt.Errorf("shard: member index %d outside [0, %d)", index, shards)
	}
	part, err := NewPartitioner(partitioner, shards, eng.Graph())
	if err != nil {
		return nil, err
	}
	return &Member{
		Engine:       eng,
		part:         part,
		index:        index,
		initialSites: initialSites,
		sessions:     make(map[string]*memberSession),
	}, nil
}

// BuildMember builds shard index of a shards-wide topology from the full
// dataset: the ladder range derives from the FULL site set (exactly as
// shard.Build does, so every member — and a single-process engine over the
// same dataset — shares one ladder), then only this member's shard
// instance is indexed.
func BuildMember(inst *tops.Instance, index int, opts Options) (*Member, error) {
	if inst == nil {
		return nil, fmt.Errorf("shard: nil instance")
	}
	if opts.Shards < 1 {
		return nil, fmt.Errorf("shard: shard count %d must be >= 1", opts.Shards)
	}
	part, err := NewPartitioner(opts.Partitioner, opts.Shards, inst.G)
	if err != nil {
		return nil, err
	}
	if index < 0 || index >= opts.Shards {
		return nil, fmt.Errorf("shard: member index %d outside [0, %d)", index, opts.Shards)
	}
	if opts.Build.TauMin <= 0 || opts.Build.TauMax <= 0 {
		tmin, tmax := core.EstimateTauRange(inst)
		if opts.Build.TauMin <= 0 {
			opts.Build.TauMin = tmin
		}
		if opts.Build.TauMax <= 0 {
			opts.Build.TauMax = tmax
		}
	}
	if opts.Build.TauMin >= opts.Build.TauMax {
		return nil, fmt.Errorf("shard: τmin %v >= τmax %v", opts.Build.TauMin, opts.Build.TauMax)
	}
	insts := shardInstances(part, inst)
	bopts := opts.Build
	if bopts.Workers <= 0 {
		bopts.Workers = runtime.NumCPU()
	}
	idx, err := core.Build(insts[index], bopts)
	if err != nil {
		return nil, fmt.Errorf("shard: building member %d: %w", index, err)
	}
	eng, err := engine.New(idx, opts.Engine)
	if err != nil {
		return nil, fmt.Errorf("shard: member %d engine: %w", index, err)
	}
	return &Member{
		Engine:       eng,
		part:         part,
		index:        index,
		initialSites: append([]roadnet.NodeID(nil), inst.Sites...),
		sessions:     make(map[string]*memberSession),
	}, nil
}

// ShardIndex returns which shard of the topology this member is.
func (m *Member) ShardIndex() int { return m.index }

// Meta assembles the /v1/shard/meta response.
func (m *Member) Meta() MemberMeta {
	idx := m.Engine.Index()
	tmin, tmax := idx.TauRange()
	live := idx.TopsInstance().Sites
	meta := MemberMeta{
		Shards:      m.part.Shards(),
		Index:       m.index,
		Partitioner: m.part.Name(),
		TauMin:      tmin,
		TauMax:      tmax,
		Gamma:       idx.Gamma(),
		Rungs:       len(idx.Instances),
		Sites:       make([]int64, len(live)),
		LSN:         m.LSN(),
		Epoch:       m.Epoch(),
	}
	for i, v := range live {
		meta.Sites[i] = int64(v)
	}
	if m.initialSites != nil {
		meta.InitialSites = make([]int64, len(m.initialSites))
		for i, v := range m.initialSites {
			meta.InitialSites[i] = int64(v)
		}
	}
	return meta
}

// Reps lists instance p's representatives for the router's ownership
// reduce (GET /v1/shard/reps).
func (m *Member) Reps(p int) ([]WireRep, error) {
	idx := m.Engine.Index()
	if p < 0 || p >= len(idx.Instances) {
		return nil, fmt.Errorf("shard: instance %d outside ladder [0, %d)", p, len(idx.Instances))
	}
	ris := m.RepInfos(p)
	out := make([]WireRep, len(ris))
	for i, ri := range ris {
		out[i] = WireRep{Cluster: int32(ri.Cluster), Node: int64(ri.Node), Dr: ri.Dr}
	}
	return out, nil
}

// Owner reports the shard the partitioner routes node v to — the router's
// remote routing oracle for partitioners it cannot evaluate without the
// graph (grid).
func (m *Member) Owner(v int64) int { return m.part.Shard(roadnet.NodeID(v)) }

// AddSite validates ownership before delegating: a misrouted site
// mutation must fail loudly, not silently split one logical partition
// across two shards.
func (m *Member) AddSite(v roadnet.NodeID) error {
	if j := m.part.Shard(v); j != m.index {
		return fmt.Errorf("shard: node %d belongs to shard %d, not this member (%d)", v, j, m.index)
	}
	return m.Engine.AddSite(v)
}

// DeleteSite validates ownership before delegating (see AddSite).
func (m *Member) DeleteSite(v roadnet.NodeID) error {
	if j := m.part.Shard(v); j != m.index {
		return fmt.Errorf("shard: node %d belongs to shard %d, not this member (%d)", v, j, m.index)
	}
	return m.Engine.DeleteSite(v)
}

// Start opens a query session: fill the masked cover for (p, ψ), seed the
// marginals, and answer the round-0 candidate. The cover snapshot is
// immutable (finalized CoverSets), so the session stays consistent even
// if mutations land between rounds.
func (m *Member) Start(ctx context.Context, req *StartRequest) (*RoundReply, error) {
	if req.QID == "" {
		return nil, fmt.Errorf("shard: start needs a qid")
	}
	if len(req.Mask) != len(req.MaskGlobal) {
		return nil, fmt.Errorf("shard: mask (%d) and mask_global (%d) lengths differ", len(req.Mask), len(req.MaskGlobal))
	}
	pref, err := req.Pref.Preference()
	if err != nil {
		return nil, err
	}
	if err := pref.Validate(); err != nil {
		return nil, err
	}
	mask := make([]core.ClusterID, len(req.Mask))
	for i, c := range req.Mask {
		mask[i] = core.ClusterID(c)
		if i > 0 && mask[i] <= mask[i-1] {
			return nil, fmt.Errorf("shard: mask must be strictly ascending")
		}
	}
	cs, reps, err := m.CoverMasked(ctx, req.P, pref, mask)
	if err != nil {
		return nil, err
	}
	// Merge the returned reps against the mask (both ascending by cluster)
	// into the local→global index map — the cross-process face of the
	// in-process scatter's g2l construction. A returned cluster the mask
	// no longer names (possible only under concurrent mutation) is not a
	// winner: -1, permanently selected.
	g2l := make([]int32, len(reps))
	mi := 0
	for li, ci := range reps {
		g2l[li] = -1
		for mi < len(mask) && mask[mi] < ci {
			mi++
		}
		if mi < len(mask) && mask[mi] == ci {
			g2l[li] = req.MaskGlobal[mi]
			mi++
		}
	}
	ses := &memberSession{
		cs:       cs,
		g2l:      g2l,
		marg:     make([]float64, len(reps)),
		selected: make([]bool, len(reps)),
		lastLI:   -1,
		touched:  time.Now(),
	}
	seedLocalMarginals(cs, g2l, ses.marg, ses.selected)
	reply := &RoundReply{M: cs.M, Cand: ses.takeCandidate()}
	m.sesMu.Lock()
	m.sweepLocked()
	m.sessions[req.QID] = ses
	m.sesMu.Unlock()
	return reply, nil
}

// Step advances a session one round: mark our candidate selected if it
// won, absorb the winner's utility deltas, and answer the next candidate.
func (m *Member) Step(req *StepRequest) (*RoundReply, error) {
	m.sesMu.Lock()
	ses := m.sessions[req.QID]
	m.sesMu.Unlock()
	if ses == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSession, req.QID)
	}
	ses.mu.Lock()
	defer ses.mu.Unlock()
	ses.touched = time.Now()
	if ses.lastLI >= 0 && ses.lastGI == req.WinnerGI {
		ses.selected[ses.lastLI] = true
	}
	applyWinnerDeltas(ses.cs, ses.marg, req.Deltas)
	return &RoundReply{Cand: ses.takeCandidate()}, nil
}

// End releases a session. Missing sessions are fine: End is best-effort
// cleanup from the gather (expiry handles the rest).
func (m *Member) End(qid string) {
	m.sesMu.Lock()
	delete(m.sessions, qid)
	m.sesMu.Unlock()
}

// Sessions reports the live session count (expiring stale ones first).
func (m *Member) Sessions() int {
	m.sesMu.Lock()
	defer m.sesMu.Unlock()
	m.lastSweep = time.Time{} // force
	m.sweepLocked()
	return len(m.sessions)
}

// sweepLocked drops sessions idle past sessionTTL, at most once per 30s.
func (m *Member) sweepLocked() {
	now := time.Now()
	if now.Sub(m.lastSweep) < 30*time.Second {
		return
	}
	m.lastSweep = now
	for qid, ses := range m.sessions {
		ses.mu.Lock()
		stale := now.Sub(ses.touched) > sessionTTL
		ses.mu.Unlock()
		if stale {
			delete(m.sessions, qid)
		}
	}
}

// takeCandidate records and returns the session's current argmax (with
// its TC list, so the gather can apply a win without another round trip),
// or nil when every owned representative is selected. Caller holds ses.mu
// (or exclusive access at start).
func (ses *memberSession) takeCandidate() *WireCand {
	best := argmaxLocal(ses.cs, ses.g2l, ses.marg, ses.selected)
	if best < 0 {
		ses.lastLI = -1
		return nil
	}
	trajs, scores := ses.cs.TC(int32(best))
	ses.lastLI = best
	ses.lastGI = ses.g2l[best]
	return &WireCand{
		GI:     ses.g2l[best],
		Marg:   ses.marg[best],
		Weight: ses.cs.Weights[best],
		Trajs:  trajs,
		Scores: scores,
	}
}
