package shard

import (
	"runtime"
	"testing"

	"netclus/internal/gen"
	"netclus/internal/roadnet"
)

func testGraph(t *testing.T) *roadnet.Graph {
	t.Helper()
	city, err := gen.GenerateCity(gen.CityConfig{Topology: gen.GridMesh, Nodes: 120, SpanKm: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return city.Graph
}

func TestPartitionersTotalAndDeterministic(t *testing.T) {
	g := testGraph(t)
	for _, name := range []string{HashPartitioner, GridPartitioner} {
		p, err := NewPartitioner(name, 5, g)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != name || p.Shards() != 5 {
			t.Fatalf("%s: identity mismatch: %s/%d", name, p.Name(), p.Shards())
		}
		// Total over hostile ids, and stable across a second instance.
		q, err := NewPartitioner(name, 5, g)
		if err != nil {
			t.Fatal(err)
		}
		hostile := []roadnet.NodeID{-1, -1 << 30, 0, 1, 119, 120, 1 << 30, roadnet.InvalidNode}
		for _, v := range hostile {
			j := p.Shard(v)
			if j < 0 || j >= 5 {
				t.Fatalf("%s: node %d mapped to %d", name, v, j)
			}
			if j != q.Shard(v) {
				t.Fatalf("%s: node %d not deterministic", name, v)
			}
		}
		// Every in-graph node covered; distribution not degenerate.
		counts := make([]int, 5)
		for v := 0; v < g.NumNodes(); v++ {
			counts[p.Shard(roadnet.NodeID(v))]++
		}
		nonEmpty := 0
		for _, c := range counts {
			if c > 0 {
				nonEmpty++
			}
		}
		if nonEmpty < 2 {
			t.Fatalf("%s: all nodes collapsed into %d shard(s): %v", name, nonEmpty, counts)
		}
	}
	if _, err := NewPartitioner("mod-n", 3, g); err == nil {
		t.Fatal("unknown partitioner accepted")
	}
	if _, err := NewPartitioner(HashPartitioner, 0, g); err == nil {
		t.Fatal("zero shard count accepted")
	}
}

func TestGridPartitionerNilGraph(t *testing.T) {
	// A grid partitioner over no graph degrades to the hash route rather
	// than crashing (defensive: manifests name the partitioner, and a
	// hostile manifest must not panic the loader).
	p := newGridPart(3, nil)
	for _, v := range []roadnet.NodeID{-5, 0, 1000} {
		if j := p.Shard(v); j < 0 || j >= 3 {
			t.Fatalf("nil-graph grid mapped %d to %d", v, j)
		}
	}
}

func TestValidateShardCount(t *testing.T) {
	for _, bad := range []int{0, -1, -100} {
		if _, _, err := ValidateShardCount(bad); err == nil {
			t.Fatalf("shard count %d accepted", bad)
		}
	}
	n, warn, err := ValidateShardCount(1)
	if err != nil || warn != "" || n != 1 {
		t.Fatalf("ValidateShardCount(1) = %d, %q, %v", n, warn, err)
	}
	cpus := runtime.NumCPU()
	n, warn, err = ValidateShardCount(cpus + 7)
	if err != nil {
		t.Fatal(err)
	}
	if n != cpus {
		t.Fatalf("over-provisioned count capped to %d, want %d", n, cpus)
	}
	if warn == "" {
		t.Fatal("capping produced no warning")
	}
}
