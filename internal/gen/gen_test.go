package gen

import (
	"math"
	"testing"

	"netclus/internal/roadnet"
	"netclus/internal/trajectory"
)

func genTestCity(t *testing.T, topo Topology) *City {
	t.Helper()
	city, err := GenerateCity(CityConfig{
		Topology: topo, Nodes: 900, SpanKm: 12, Jitter: 0.25,
		OneWayFrac: 0.1, RemoveFrac: 0.05, Seed: 42,
	})
	if err != nil {
		t.Fatalf("GenerateCity(%v): %v", topo, err)
	}
	return city
}

func TestGenerateCityAllTopologies(t *testing.T) {
	for _, topo := range []Topology{GridMesh, Star, Polycentric, RingMesh} {
		t.Run(topo.String(), func(t *testing.T) {
			city := genTestCity(t, topo)
			g := city.Graph
			if g.NumNodes() < 100 {
				t.Fatalf("only %d nodes survived SCC restriction", g.NumNodes())
			}
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
			if len(city.Hotspots) == 0 {
				t.Error("no hotspots")
			}
			// Strong connectivity: all round trips from node 0 finite.
			rts := roadnet.RoundTripsFrom(g, 0)
			for v, rt := range rts {
				if math.IsInf(rt, 1) {
					t.Fatalf("node %d unreachable — SCC restriction failed", v)
				}
			}
		})
	}
}

func TestGenerateCityDeterminism(t *testing.T) {
	cfg := CityConfig{Topology: GridMesh, Nodes: 400, SpanKm: 8, Jitter: 0.2, Seed: 7}
	a, err := GenerateCity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateCity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumNodes() != b.Graph.NumNodes() || a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatal("same seed produced different cities")
	}
	for v := 0; v < a.Graph.NumNodes(); v++ {
		if a.Graph.Point(roadnet.NodeID(v)) != b.Graph.Point(roadnet.NodeID(v)) {
			t.Fatal("node positions differ")
		}
	}
}

func TestGenerateCityEdgeWeightsAdmissible(t *testing.T) {
	// Every edge weight must be >= Euclidean distance (A* admissibility).
	city := genTestCity(t, RingMesh)
	g := city.Graph
	for v := 0; v < g.NumNodes(); v++ {
		g.Neighbors(roadnet.NodeID(v), func(to roadnet.NodeID, w float64) bool {
			if eu := g.Point(roadnet.NodeID(v)).Dist(g.Point(to)); w < eu-1e-9 {
				t.Fatalf("edge %d->%d weight %v < euclid %v", v, to, w, eu)
			}
			return true
		})
	}
}

func TestGenerateCityUnknownTopology(t *testing.T) {
	if _, err := GenerateCity(CityConfig{Topology: Topology(99)}); err == nil {
		t.Error("unknown topology accepted")
	}
}

func TestGenerateTrajectories(t *testing.T) {
	city := genTestCity(t, GridMesh)
	store, err := GenerateTrajectories(city, TrajConfig{Count: 150, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != 150 {
		t.Fatalf("generated %d trajectories", store.Len())
	}
	stats := store.ComputeStats()
	if stats.MeanNodes < 3 {
		t.Errorf("trajectories too short: %+v", stats)
	}
	store.ForEach(func(id trajectory.ID, tr *trajectory.Trajectory) {
		if err := tr.Validate(); err != nil {
			t.Fatalf("trajectory %d: %v", id, err)
		}
		// Every hop must follow a graph edge (paths come from A*).
		for i := 0; i+1 < tr.Len(); i++ {
			if !city.Graph.HasEdge(tr.Nodes[i], tr.Nodes[i+1]) {
				t.Fatalf("trajectory %d hop %d->%d not an edge", id, tr.Nodes[i], tr.Nodes[i+1])
			}
		}
	})
}

func TestGenerateTrajectoriesDeterminism(t *testing.T) {
	city := genTestCity(t, Star)
	cfg := TrajConfig{Count: 50, Seed: 3}
	a, err := GenerateTrajectories(city, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTrajectories(city, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Len(); i++ {
		ta, tb := a.Get(trajectory.ID(i)), b.Get(trajectory.ID(i))
		if ta.Len() != tb.Len() {
			t.Fatal("same seed produced different trajectories")
		}
		for j := range ta.Nodes {
			if ta.Nodes[j] != tb.Nodes[j] {
				t.Fatal("node sequences differ")
			}
		}
	}
}

func TestGenerateTrajectoriesLengthBounds(t *testing.T) {
	city := genTestCity(t, GridMesh)
	cfg := TrajConfig{Count: 60, MinLenKm: 3, MaxLenKm: 7, Seed: 5}
	store, err := GenerateTrajectories(city, cfg)
	if err != nil {
		t.Fatal(err)
	}
	store.ForEach(func(id trajectory.ID, tr *trajectory.Trajectory) {
		if tr.Length() < 3 || tr.Length() > 28 { // MaxLenKm*4 cap
			t.Errorf("trajectory %d length %v outside bounds", id, tr.Length())
		}
	})
}

func TestGenerateTrajectoriesTooRestrictive(t *testing.T) {
	city := genTestCity(t, GridMesh)
	// Impossible bounds: min above the whole span.
	_, err := GenerateTrajectories(city, TrajConfig{Count: 5, MinLenKm: 500, MaxLenKm: 600, Seed: 1})
	if err == nil {
		t.Error("impossible config accepted")
	}
}

func TestEmitGPS(t *testing.T) {
	city := genTestCity(t, GridMesh)
	store, err := GenerateTrajectories(city, TrajConfig{Count: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tr := store.Get(0)
	trace := EmitGPS(city.Graph, tr, GPSConfig{SampleEveryKm: 0.3, NoiseSigmaKm: 0.02, Seed: 9})
	if len(trace.Points) < 2 {
		t.Fatalf("trace has %d points", len(trace.Points))
	}
	// Expected point count is roughly length/interval.
	expect := tr.Length() / 0.3
	if float64(len(trace.Points)) < expect/2 || float64(len(trace.Points)) > expect*2+4 {
		t.Errorf("point count %d far from expectation %.0f", len(trace.Points), expect)
	}
	// Timestamps must be non-decreasing.
	for i := 1; i < len(trace.Points); i++ {
		if trace.Points[i].Time < trace.Points[i-1].Time {
			t.Fatal("timestamps decrease")
		}
	}
	// First point near trajectory start (within a few sigma).
	if trace.Points[0].Pos.Dist(city.Graph.Point(tr.Nodes[0])) > 0.2 {
		t.Error("first GPS point far from start")
	}
}

func TestEmitGPSNoNoise(t *testing.T) {
	city := genTestCity(t, GridMesh)
	store, err := GenerateTrajectories(city, TrajConfig{Count: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	tr := store.Get(0)
	trace := EmitGPS(city.Graph, tr, GPSConfig{SampleEveryKm: 0.2, NoiseSigmaKm: -1, Seed: 1})
	// With zero noise the first point coincides with the start node.
	if d := trace.Points[0].Pos.Dist(city.Graph.Point(tr.Nodes[0])); d > 1e-9 {
		t.Errorf("noiseless first point off by %v", d)
	}
}

func TestSampleSites(t *testing.T) {
	city := genTestCity(t, GridMesh)
	n := city.Graph.NumNodes()
	all, err := SampleSites(city.Graph, SiteConfig{})
	if err != nil || len(all) != n {
		t.Fatalf("all-nodes sampling: len=%d err=%v", len(all), err)
	}
	sub, err := SampleSites(city.Graph, SiteConfig{Count: 50, Seed: 1})
	if err != nil || len(sub) != 50 {
		t.Fatalf("sampling: len=%d err=%v", len(sub), err)
	}
	// Sorted, unique, in range.
	for i := range sub {
		if i > 0 && sub[i] <= sub[i-1] {
			t.Fatal("sites not sorted/unique")
		}
		if int(sub[i]) >= n {
			t.Fatal("site out of range")
		}
	}
	// Deterministic.
	sub2, _ := SampleSites(city.Graph, SiteConfig{Count: 50, Seed: 1})
	for i := range sub {
		if sub[i] != sub2[i] {
			t.Fatal("sampling not deterministic")
		}
	}
	// Empty graph.
	if _, err := SampleSites(roadnet.New(0), SiteConfig{}); err == nil {
		t.Error("empty graph accepted")
	}
}
