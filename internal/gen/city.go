// Package gen synthesizes road networks and trajectory workloads.
//
// The paper evaluates on proprietary map-matched GPS data (T-Drive Beijing
// taxi traces) and on MNTG-generated traffic for New York, Atlanta and
// Bangalore. Neither source is available offline, so this package builds the
// closest synthetic equivalents:
//
//   - topology generators for the three city classes the paper contrasts in
//     Fig. 11 — star (New York), grid mesh (Atlanta), polycentric
//     (Bangalore) — plus a ring-mesh class standing in for Beijing;
//   - an origin–destination trajectory sampler with hotspot skew, routing
//     along (near-)shortest paths with optional waypoint deviation, matching
//     the well-known observation that real trips are not exactly shortest
//     paths;
//   - a GPS-noise emitter that converts node trajectories back into noisy
//     point traces so the map-matching substrate is exercised end to end.
//
// Everything is deterministic given the seed, so experiments are repeatable.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"netclus/internal/geo"
	"netclus/internal/roadnet"
)

// Topology selects the class of synthetic city.
type Topology int

const (
	// GridMesh is a rectangular lattice with jitter and random edge
	// removals — the Atlanta-style mesh of the paper ("trajectories
	// distributed all over the city").
	GridMesh Topology = iota
	// Star has arterial roads radiating from a dense core with sparse
	// ring connectors — the New York-style topology of the paper.
	Star
	// Polycentric has several dense local centers connected by highways —
	// the Bangalore-style topology of the paper.
	Polycentric
	// RingMesh is a dense mesh with concentric ring roads, standing in
	// for the Beijing network.
	RingMesh
)

// String implements fmt.Stringer.
func (tp Topology) String() string {
	switch tp {
	case GridMesh:
		return "grid-mesh"
	case Star:
		return "star"
	case Polycentric:
		return "polycentric"
	case RingMesh:
		return "ring-mesh"
	default:
		return fmt.Sprintf("topology(%d)", int(tp))
	}
}

// CityConfig parameterizes a synthetic road network.
type CityConfig struct {
	Topology Topology
	// Nodes is the approximate target node count before SCC restriction.
	Nodes int
	// SpanKm is the side length of the covered area in kilometres.
	SpanKm float64
	// Jitter perturbs node positions by this fraction of the lattice
	// spacing (0..0.5 recommended).
	Jitter float64
	// OneWayFrac is the fraction of street segments that are one-way.
	OneWayFrac float64
	// RemoveFrac removes this fraction of segments to break the perfect
	// lattice (applied before SCC restriction).
	RemoveFrac float64
	// Curvature scales edge weights relative to Euclidean length
	// (>= 1; defaults to 1.2, a typical road-curvature factor).
	Curvature float64
	// Seed drives all randomness.
	Seed int64
}

// withDefaults fills zero values.
func (c CityConfig) withDefaults() CityConfig {
	if c.Nodes <= 0 {
		c.Nodes = 2500
	}
	if c.SpanKm <= 0 {
		c.SpanKm = 20
	}
	if c.Curvature < 1 {
		c.Curvature = 1.2
	}
	if c.Jitter < 0 {
		c.Jitter = 0
	}
	return c
}

// City is a generated road network together with the hotspot centers used
// by the trajectory sampler.
type City struct {
	Graph    *roadnet.Graph
	Config   CityConfig
	Hotspots []geo.Point
}

// GenerateCity builds a synthetic city per the config. The returned graph is
// restricted to its largest strongly connected component so that every
// round-trip distance is finite, matching the map-matched real networks the
// paper operates on.
func GenerateCity(cfg CityConfig) (*City, error) {
	cfg = cfg.withDefaults()
	if cfg.Curvature < 1 {
		return nil, fmt.Errorf("gen: curvature %v < 1 breaks A* admissibility", cfg.Curvature)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var g *roadnet.Graph
	var hotspots []geo.Point
	switch cfg.Topology {
	case GridMesh:
		g, hotspots = genGrid(cfg, rng, false)
	case RingMesh:
		g, hotspots = genGrid(cfg, rng, true)
	case Star:
		g, hotspots = genStar(cfg, rng)
	case Polycentric:
		g, hotspots = genPolycentric(cfg, rng)
	default:
		return nil, fmt.Errorf("gen: unknown topology %v", cfg.Topology)
	}
	core, mapping := roadnet.RestrictToLargestSCC(g)
	if core.NumNodes() == 0 {
		return nil, fmt.Errorf("gen: empty SCC core (config too destructive: %+v)", cfg)
	}
	_ = mapping
	return &City{Graph: core, Config: cfg, Hotspots: hotspots}, nil
}

// addStreet adds a two-way or (with probability cfg.OneWayFrac) one-way
// street between u and v, unless rng drops it per cfg.RemoveFrac.
func addStreet(g *roadnet.Graph, cfg CityConfig, rng *rand.Rand, u, v roadnet.NodeID) {
	if u == v {
		return
	}
	if rng.Float64() < cfg.RemoveFrac {
		return
	}
	if rng.Float64() < cfg.OneWayFrac {
		if rng.Intn(2) == 0 {
			_ = g.AddEdgeEuclid(u, v, cfg.Curvature)
		} else {
			_ = g.AddEdgeEuclid(v, u, cfg.Curvature)
		}
		return
	}
	_ = g.AddEdgeEuclid(u, v, cfg.Curvature)
	_ = g.AddEdgeEuclid(v, u, cfg.Curvature)
}

// genGrid builds a jittered lattice; with rings=true it densifies the center
// and overlays ring roads (RingMesh / "Beijing").
func genGrid(cfg CityConfig, rng *rand.Rand, rings bool) (*roadnet.Graph, []geo.Point) {
	side := int(math.Round(math.Sqrt(float64(cfg.Nodes))))
	if side < 2 {
		side = 2
	}
	spacing := cfg.SpanKm / float64(side-1)
	g := roadnet.New(side * side)
	ids := make([][]roadnet.NodeID, side)
	for y := 0; y < side; y++ {
		ids[y] = make([]roadnet.NodeID, side)
		for x := 0; x < side; x++ {
			p := geo.Point{
				X: float64(x)*spacing + (rng.Float64()-0.5)*2*cfg.Jitter*spacing,
				Y: float64(y)*spacing + (rng.Float64()-0.5)*2*cfg.Jitter*spacing,
			}
			ids[y][x] = g.AddNode(p)
		}
	}
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			if x+1 < side {
				addStreet(g, cfg, rng, ids[y][x], ids[y][x+1])
			}
			if y+1 < side {
				addStreet(g, cfg, rng, ids[y][x], ids[y+1][x])
			}
			// Occasional diagonal shortcut.
			if x+1 < side && y+1 < side && rng.Float64() < 0.08 {
				addStreet(g, cfg, rng, ids[y][x], ids[y+1][x+1])
			}
		}
	}
	center := geo.Point{X: cfg.SpanKm / 2, Y: cfg.SpanKm / 2}
	hotspots := []geo.Point{center}
	if rings {
		// Ring roads: connect lattice nodes lying near concentric radii
		// with faster (less curvy) segments.
		for _, rFrac := range []float64{0.15, 0.3, 0.45} {
			radius := cfg.SpanKm * rFrac
			var ringNodes []roadnet.NodeID
			for y := 0; y < side; y++ {
				for x := 0; x < side; x++ {
					if math.Abs(g.Point(ids[y][x]).Dist(center)-radius) < spacing*0.6 {
						ringNodes = append(ringNodes, ids[y][x])
					}
				}
			}
			// Sort ring nodes by angle and link consecutive ones.
			sortByAngle(g, ringNodes, center)
			for i := 0; i < len(ringNodes); i++ {
				u := ringNodes[i]
				v := ringNodes[(i+1)%len(ringNodes)]
				if u != v && g.Point(u).Dist(g.Point(v)) < spacing*4 {
					_ = g.AddEdgeEuclid(u, v, 1.05)
					_ = g.AddEdgeEuclid(v, u, 1.05)
				}
			}
		}
		// Beijing-style hotspots: center plus ring intersections.
		for _, f := range []geo.Point{{X: 0.3, Y: 0.3}, {X: 0.7, Y: 0.3}, {X: 0.3, Y: 0.7}, {X: 0.7, Y: 0.7}} {
			hotspots = append(hotspots, geo.Point{X: cfg.SpanKm * f.X, Y: cfg.SpanKm * f.Y})
		}
	} else {
		// Mesh cities have diffuse demand: corners and center.
		for _, f := range []geo.Point{{X: 0.2, Y: 0.2}, {X: 0.8, Y: 0.2}, {X: 0.2, Y: 0.8}, {X: 0.8, Y: 0.8}, {X: 0.5, Y: 0.1}, {X: 0.1, Y: 0.5}} {
			hotspots = append(hotspots, geo.Point{X: cfg.SpanKm * f.X, Y: cfg.SpanKm * f.Y})
		}
	}
	return g, hotspots
}

// genStar builds radial arteries from a dense core with ring connectors.
func genStar(cfg CityConfig, rng *rand.Rand) (*roadnet.Graph, []geo.Point) {
	g := roadnet.New(cfg.Nodes)
	center := geo.Point{X: cfg.SpanKm / 2, Y: cfg.SpanKm / 2}
	arms := 8
	maxRadius := cfg.SpanKm / 2

	// Dense core: small grid around the center covering ~15% of the span.
	coreSide := int(math.Max(3, math.Sqrt(float64(cfg.Nodes)*0.25)))
	coreSpan := cfg.SpanKm * 0.18
	coreSpacing := coreSpan / float64(coreSide-1)
	coreIDs := make([][]roadnet.NodeID, coreSide)
	origin := geo.Point{X: center.X - coreSpan/2, Y: center.Y - coreSpan/2}
	for y := 0; y < coreSide; y++ {
		coreIDs[y] = make([]roadnet.NodeID, coreSide)
		for x := 0; x < coreSide; x++ {
			p := geo.Point{
				X: origin.X + float64(x)*coreSpacing + (rng.Float64()-0.5)*cfg.Jitter*coreSpacing,
				Y: origin.Y + float64(y)*coreSpacing + (rng.Float64()-0.5)*cfg.Jitter*coreSpacing,
			}
			coreIDs[y][x] = g.AddNode(p)
		}
	}
	for y := 0; y < coreSide; y++ {
		for x := 0; x < coreSide; x++ {
			if x+1 < coreSide {
				addStreet(g, cfg, rng, coreIDs[y][x], coreIDs[y][x+1])
			}
			if y+1 < coreSide {
				addStreet(g, cfg, rng, coreIDs[y][x], coreIDs[y+1][x])
			}
		}
	}

	// Arms: chains of nodes leaving the core edge, with short side branches.
	nodesPerArm := (cfg.Nodes - coreSide*coreSide) / arms
	if nodesPerArm < 4 {
		nodesPerArm = 4
	}
	armEnds := make([][]roadnet.NodeID, arms) // nodes of each arm in order
	for a := 0; a < arms; a++ {
		angle := 2 * math.Pi * float64(a) / float64(arms)
		dir := geo.Point{X: math.Cos(angle), Y: math.Sin(angle)}
		startR := coreSpan * 0.5
		// Attach the arm to the nearest core boundary node.
		attach := coreIDs[clampIdx(int(float64(coreSide)*(0.5+dir.Y/2)), coreSide)][clampIdx(int(float64(coreSide)*(0.5+dir.X/2)), coreSide)]
		prev := attach
		mainLen := nodesPerArm * 2 / 3
		branchBudget := nodesPerArm - mainLen
		for i := 1; i <= mainLen; i++ {
			r := startR + (maxRadius-startR)*float64(i)/float64(mainLen)
			p := center.Add(dir.Scale(r))
			p.X += (rng.Float64() - 0.5) * cfg.Jitter * 2
			p.Y += (rng.Float64() - 0.5) * cfg.Jitter * 2
			v := g.AddNode(p)
			// Arteries are fast (low curvature) and always two-way.
			_ = g.AddEdgeEuclid(prev, v, 1.05)
			_ = g.AddEdgeEuclid(v, prev, 1.05)
			armEnds[a] = append(armEnds[a], v)
			// Side branch.
			if branchBudget > 0 && rng.Float64() < 0.4 {
				perp := geo.Point{X: -dir.Y, Y: dir.X}
				if rng.Intn(2) == 0 {
					perp = perp.Scale(-1)
				}
				bp := p.Add(perp.Scale(0.5 + rng.Float64()))
				b := g.AddNode(bp)
				addStreet(g, cfg, rng, v, b)
				branchBudget--
			}
			prev = v
		}
	}
	// Ring connectors between adjacent arms at two radii fractions.
	for _, frac := range []float64{0.35, 0.7} {
		for a := 0; a < arms; a++ {
			na := armEnds[a]
			nb := armEnds[(a+1)%arms]
			if len(na) == 0 || len(nb) == 0 {
				continue
			}
			i := clampIdx(int(frac*float64(len(na))), len(na))
			j := clampIdx(int(frac*float64(len(nb))), len(nb))
			addStreet(g, cfg, rng, na[i], nb[j])
		}
	}
	// Star hotspots: the core plus a few arm tips (commuter origins).
	hotspots := []geo.Point{center}
	for a := 0; a < arms; a += 2 {
		if n := len(armEnds[a]); n > 0 {
			hotspots = append(hotspots, g.Point(armEnds[a][n-1]))
		}
	}
	return g, hotspots
}

// genPolycentric builds several dense local grids connected by highways.
func genPolycentric(cfg CityConfig, rng *rand.Rand) (*roadnet.Graph, []geo.Point) {
	g := roadnet.New(cfg.Nodes)
	centers := 5
	hotspots := make([]geo.Point, 0, centers)
	// Place centers on a loose pentagon with jitter.
	mid := geo.Point{X: cfg.SpanKm / 2, Y: cfg.SpanKm / 2}
	var centerPts []geo.Point
	for c := 0; c < centers; c++ {
		angle := 2*math.Pi*float64(c)/float64(centers) + rng.Float64()*0.3
		r := cfg.SpanKm * (0.22 + rng.Float64()*0.1)
		centerPts = append(centerPts, mid.Add(geo.Point{X: math.Cos(angle) * r, Y: math.Sin(angle) * r}))
	}
	nodesPerCenter := cfg.Nodes / centers
	side := int(math.Max(3, math.Sqrt(float64(nodesPerCenter))))
	localSpan := cfg.SpanKm * 0.22
	gateways := make([]roadnet.NodeID, centers)
	for c, cp := range centerPts {
		hotspots = append(hotspots, cp)
		spacing := localSpan / float64(side-1)
		origin := geo.Point{X: cp.X - localSpan/2, Y: cp.Y - localSpan/2}
		ids := make([][]roadnet.NodeID, side)
		for y := 0; y < side; y++ {
			ids[y] = make([]roadnet.NodeID, side)
			for x := 0; x < side; x++ {
				p := geo.Point{
					X: origin.X + float64(x)*spacing + (rng.Float64()-0.5)*cfg.Jitter*spacing,
					Y: origin.Y + float64(y)*spacing + (rng.Float64()-0.5)*cfg.Jitter*spacing,
				}
				ids[y][x] = g.AddNode(p)
			}
		}
		for y := 0; y < side; y++ {
			for x := 0; x < side; x++ {
				if x+1 < side {
					addStreet(g, cfg, rng, ids[y][x], ids[y][x+1])
				}
				if y+1 < side {
					addStreet(g, cfg, rng, ids[y][x], ids[y+1][x])
				}
			}
		}
		gateways[c] = ids[side/2][side/2]
	}
	// Highways: connect every pair of adjacent centers (ring) plus one
	// cross-link, with intermediate nodes so the highway is map-matchable.
	link := func(a, b roadnet.NodeID) {
		pa, pb := g.Point(a), g.Point(b)
		hops := int(math.Max(2, pa.Dist(pb)/1.5))
		prev := a
		for i := 1; i < hops; i++ {
			p := geo.Lerp(pa, pb, float64(i)/float64(hops))
			p.X += (rng.Float64() - 0.5) * 0.4
			p.Y += (rng.Float64() - 0.5) * 0.4
			v := g.AddNode(p)
			_ = g.AddEdgeEuclid(prev, v, 1.02)
			_ = g.AddEdgeEuclid(v, prev, 1.02)
			prev = v
		}
		_ = g.AddEdgeEuclid(prev, b, 1.02)
		_ = g.AddEdgeEuclid(b, prev, 1.02)
	}
	for c := 0; c < centers; c++ {
		link(gateways[c], gateways[(c+1)%centers])
	}
	link(gateways[0], gateways[2])
	return g, hotspots
}

func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// sortByAngle orders node ids by polar angle around center (insertion sort;
// ring node counts are small).
func sortByAngle(g *roadnet.Graph, ids []roadnet.NodeID, center geo.Point) {
	angle := func(v roadnet.NodeID) float64 {
		p := g.Point(v).Sub(center)
		return math.Atan2(p.Y, p.X)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && angle(ids[j]) < angle(ids[j-1]); j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
