package gen

import (
	"fmt"
	"math"
	"math/rand"

	"netclus/internal/geo"
	"netclus/internal/roadnet"
	"netclus/internal/spatial"
	"netclus/internal/trajectory"
)

// TrajConfig parameterizes the origin–destination trajectory sampler.
type TrajConfig struct {
	// Count is the number of trajectories to generate (m of the paper).
	Count int
	// HotspotProb is the probability that an endpoint is drawn near a
	// hotspot instead of uniformly (captures commuting skew).
	HotspotProb float64
	// HotspotSigmaKm is the Gaussian spread around a hotspot.
	HotspotSigmaKm float64
	// MinLenKm / MaxLenKm bound the Euclidean OD separation; trips whose
	// routed length falls outside [MinLenKm, 4*MaxLenKm] are rejected.
	MinLenKm, MaxLenKm float64
	// DeviationProb routes a trip through a random waypoint with this
	// probability, so trajectories are not all exact shortest paths.
	DeviationProb float64
	// Seed drives all randomness.
	Seed int64
}

func (c TrajConfig) withDefaults(city *City) TrajConfig {
	if c.Count <= 0 {
		c.Count = 1000
	}
	if c.HotspotProb == 0 {
		c.HotspotProb = 0.6
	}
	if c.HotspotSigmaKm <= 0 {
		c.HotspotSigmaKm = city.Config.SpanKm * 0.06
	}
	if c.MinLenKm <= 0 {
		c.MinLenKm = city.Config.SpanKm * 0.15
	}
	if c.MaxLenKm <= 0 {
		c.MaxLenKm = city.Config.SpanKm * 0.8
	}
	if c.DeviationProb == 0 {
		c.DeviationProb = 0.35
	}
	return c
}

// GenerateTrajectories samples trajectories over the city per the config.
func GenerateTrajectories(city *City, cfg TrajConfig) (*trajectory.Store, error) {
	cfg = cfg.withDefaults(city)
	g := city.Graph
	if g.NumNodes() < 2 {
		return nil, fmt.Errorf("gen: graph too small for trajectories")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	grid := spatial.NewGrid(g, 0)
	store := trajectory.NewStore(cfg.Count)

	pickNode := func() roadnet.NodeID {
		if len(city.Hotspots) > 0 && rng.Float64() < cfg.HotspotProb {
			h := city.Hotspots[rng.Intn(len(city.Hotspots))]
			p := geo.Point{
				X: h.X + rng.NormFloat64()*cfg.HotspotSigmaKm,
				Y: h.Y + rng.NormFloat64()*cfg.HotspotSigmaKm,
			}
			v, _ := grid.Nearest(p)
			return v
		}
		return roadnet.NodeID(rng.Intn(g.NumNodes()))
	}

	// Length bounds relax progressively when a topology (e.g. a sparse
	// star at tiny scale) makes the configured window hard to hit, so
	// generation degrades gracefully instead of failing.
	const maxAttemptsPerTraj = 240
	const relaxEvery = 40
	for store.Len() < cfg.Count {
		var made bool
		minLen, maxLen := cfg.MinLenKm, cfg.MaxLenKm
		for attempt := 0; attempt < maxAttemptsPerTraj; attempt++ {
			if attempt > 0 && attempt%relaxEvery == 0 {
				minLen *= 0.5
				maxLen *= 1.5
			}
			src := pickNode()
			dst := pickNode()
			if src == dst || src == roadnet.InvalidNode || dst == roadnet.InvalidNode {
				continue
			}
			sep := g.Point(src).Dist(g.Point(dst))
			if sep < minLen || sep > maxLen {
				continue
			}
			path := routeTrip(g, grid, rng, src, dst, cfg)
			if path == nil {
				continue
			}
			tr, err := trajectory.New(g, path)
			if err != nil || tr.Len() < 2 {
				continue
			}
			if tr.Length() < minLen || tr.Length() > maxLen*4 {
				continue
			}
			store.Add(tr)
			made = true
			break
		}
		if !made {
			return nil, fmt.Errorf("gen: could not generate trajectory %d after %d attempts (config too restrictive: %+v)", store.Len(), maxAttemptsPerTraj, cfg)
		}
	}
	return store, nil
}

// routeTrip routes src -> dst, optionally via a waypoint off the direct
// corridor to emulate non-shortest-path behaviour.
func routeTrip(g *roadnet.Graph, grid *spatial.Grid, rng *rand.Rand, src, dst roadnet.NodeID, cfg TrajConfig) []roadnet.NodeID {
	if rng.Float64() < cfg.DeviationProb {
		mid := geo.Lerp(g.Point(src), g.Point(dst), 0.3+rng.Float64()*0.4)
		// Push the waypoint sideways off the corridor.
		dir := g.Point(dst).Sub(g.Point(src))
		norm := dir.Norm()
		if norm > 0 {
			perp := geo.Point{X: -dir.Y / norm, Y: dir.X / norm}
			off := (rng.Float64()*0.15 + 0.05) * norm
			if rng.Intn(2) == 0 {
				off = -off
			}
			mid = mid.Add(perp.Scale(off))
		}
		way, _ := grid.Nearest(mid)
		if way != roadnet.InvalidNode && way != src && way != dst {
			p1, d1 := roadnet.AStar(g, src, way)
			p2, d2 := roadnet.AStar(g, way, dst)
			if !math.IsInf(d1, 1) && !math.IsInf(d2, 1) {
				return append(p1, p2[1:]...)
			}
		}
	}
	path, d := roadnet.AStar(g, src, dst)
	if math.IsInf(d, 1) {
		return nil
	}
	return path
}

// GPSConfig parameterizes the noisy trace emitter.
type GPSConfig struct {
	// SampleEveryKm emits one GPS point per this many kilometres of travel.
	SampleEveryKm float64
	// NoiseSigmaKm is the Gaussian position noise (typical urban GPS noise
	// is 10–30 m, i.e. 0.01–0.03 km).
	NoiseSigmaKm float64
	// SpeedKmh converts travelled distance into timestamps.
	SpeedKmh float64
	// Seed drives the noise.
	Seed int64
}

func (c GPSConfig) withDefaults() GPSConfig {
	if c.SampleEveryKm <= 0 {
		c.SampleEveryKm = 0.25
	}
	if c.NoiseSigmaKm < 0 {
		c.NoiseSigmaKm = 0
	} else if c.NoiseSigmaKm == 0 {
		c.NoiseSigmaKm = 0.02
	}
	if c.SpeedKmh <= 0 {
		c.SpeedKmh = 30
	}
	return c
}

// EmitGPS converts a node trajectory into a noisy GPS trace by walking the
// straight segments between consecutive trajectory nodes and sampling
// points at a fixed distance interval, then adding Gaussian noise. The first
// and last nodes are always sampled so the trace spans the full trip.
func EmitGPS(g *roadnet.Graph, tr *trajectory.Trajectory, cfg GPSConfig) trajectory.GPSTrace {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var trace trajectory.GPSTrace
	if tr.Len() == 0 {
		return trace
	}
	noise := func(p geo.Point) geo.Point {
		return geo.Point{
			X: p.X + rng.NormFloat64()*cfg.NoiseSigmaKm,
			Y: p.Y + rng.NormFloat64()*cfg.NoiseSigmaKm,
		}
	}
	emit := func(p geo.Point, travelled float64) {
		trace.Points = append(trace.Points, trajectory.GPSPoint{
			Pos:  noise(p),
			Time: travelled / cfg.SpeedKmh * 3600,
		})
	}
	emit(g.Point(tr.Nodes[0]), 0)
	sinceLast := 0.0
	for i := 0; i+1 < tr.Len(); i++ {
		a := g.Point(tr.Nodes[i])
		b := g.Point(tr.Nodes[i+1])
		segLen := tr.CumDist[i+1] - tr.CumDist[i]
		straight := a.Dist(b)
		pos := 0.0
		for pos < segLen {
			step := math.Min(cfg.SampleEveryKm-sinceLast, segLen-pos)
			pos += step
			sinceLast += step
			if sinceLast >= cfg.SampleEveryKm-1e-12 {
				t := 1.0
				if straight > 0 && segLen > 0 {
					t = pos / segLen
				}
				emit(geo.Lerp(a, b, math.Min(1, t)), tr.CumDist[i]+pos)
				sinceLast = 0
			}
		}
	}
	last := g.Point(tr.Nodes[tr.Len()-1])
	lp := trace.Points[len(trace.Points)-1]
	if lp.Pos.Dist(last) > cfg.SampleEveryKm/4 {
		emit(last, tr.Length())
	}
	return trace
}
