package gen

import (
	"fmt"
	"math/rand"

	"netclus/internal/roadnet"
)

// SiteConfig parameterizes candidate-site sampling.
type SiteConfig struct {
	// Count is the number of candidate sites n. Count <= 0 selects every
	// node, mirroring the paper's default assumption ("the number of
	// candidate sites is the same as the number of nodes in the graph").
	Count int
	// Seed drives the sampling.
	Seed int64
}

// SampleSites returns a candidate-site set S ⊆ V. With Count <= 0 or
// Count >= |V| it returns all nodes. Otherwise it returns a uniform sample
// without replacement, sorted ascending for deterministic downstream
// iteration.
func SampleSites(g *roadnet.Graph, cfg SiteConfig) ([]roadnet.NodeID, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("gen: cannot sample sites from empty graph")
	}
	if cfg.Count <= 0 || cfg.Count >= n {
		all := make([]roadnet.NodeID, n)
		for i := range all {
			all[i] = roadnet.NodeID(i)
		}
		return all, nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	perm := rng.Perm(n)
	picked := perm[:cfg.Count]
	// Insertion-free sort via counting: mark and sweep keeps determinism
	// independent of rand.Perm internals' order.
	mark := make([]bool, n)
	for _, v := range picked {
		mark[v] = true
	}
	sites := make([]roadnet.NodeID, 0, cfg.Count)
	for v := 0; v < n; v++ {
		if mark[v] {
			sites = append(sites, roadnet.NodeID(v))
		}
	}
	return sites, nil
}
