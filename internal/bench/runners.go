package bench

import (
	"context"
	"fmt"
	"time"

	"netclus/internal/core"
	"netclus/internal/dataset"
	"netclus/internal/tops"
)

// AlgoResult is one algorithm's outcome on one parameter point.
type AlgoResult struct {
	// UtilityPct is the exact utility as a fraction of m (the paper plots
	// utilities as percentages of the trajectory count).
	UtilityPct float64
	// Seconds is the query wall time: covering-set construction plus
	// greedy for INCG/FMG, the full online phase for NETCLUS variants.
	Seconds float64
	// MemBytes estimates the query-time data-structure footprint.
	MemBytes int64
	// Covered counts covered trajectories.
	Covered int
}

// runINCG runs the baseline INC-GREEDY: covering sets are built from the
// precomputed distance index at query time (as in §3.2), then the greedy
// selects k sites.
func (h *Harness) runINCG(name dataset.Preset, pref tops.Preference, k int, useFM bool) (AlgoResult, error) {
	d, err := h.Dataset(name)
	if err != nil {
		return AlgoResult{}, err
	}
	distIdx, err := h.DistIndex(name, stdDmax)
	if err != nil {
		return AlgoResult{}, err
	}
	start := time.Now()
	cs, err := tops.BuildCoverSets(distIdx, pref)
	if err != nil {
		return AlgoResult{}, err
	}
	var res tops.Result
	if useFM {
		res, err = tops.FMGreedy(cs, tops.FMGreedyOptions{K: k, F: 30, Seed: uint64(h.cfg.Seed)})
	} else {
		res, err = tops.IncGreedy(cs, tops.GreedyOptions{K: k})
	}
	if err != nil {
		return AlgoResult{}, err
	}
	sec := time.Since(start).Seconds()
	mem := cs.MemoryBytes()
	if useFM {
		mem += int64(cs.N()) * 30 * 4 // sketch words
	}
	return AlgoResult{
		UtilityPct: res.Utility / float64(d.Instance.M()),
		Seconds:    sec,
		MemBytes:   mem,
		Covered:    res.Covered,
	}, nil
}

// runNetClus runs the NETCLUS online phase through the serving engine and
// evaluates the answer's exact utility against the distance index, which is
// how the paper reports NETCLUS quality. The harness engine disables the
// cover cache so every run pays its own online phase, as the paper's
// numbers do.
func (h *Harness) runNetClus(name dataset.Preset, pref tops.Preference, k int, useFM bool) (AlgoResult, error) {
	d, err := h.Dataset(name)
	if err != nil {
		return AlgoResult{}, err
	}
	eng, err := h.Engine(name, stdGamma, stdTauMin, stdTauMax)
	if err != nil {
		return AlgoResult{}, err
	}
	idx := eng.Index()
	distIdx, err := h.DistIndex(name, stdDmax)
	if err != nil {
		return AlgoResult{}, err
	}
	start := time.Now()
	qr, err := eng.Query(context.Background(), core.QueryOptions{K: k, Pref: pref, UseFM: useFM, F: 30, Seed: uint64(h.cfg.Seed)})
	if err != nil {
		return AlgoResult{}, err
	}
	sec := time.Since(start).Seconds()
	exactU, covered := idx.EvaluateExact(distIdx, pref, qr.Sites)
	cs, _ := idx.RepCover(qr.InstanceUsed, pref)
	return AlgoResult{
		UtilityPct: exactU / float64(d.Instance.M()),
		Seconds:    sec,
		MemBytes:   idx.MemoryBytes() + cs.MemoryBytes(),
		Covered:    covered,
	}, nil
}

// runAll runs the four algorithm variants the paper compares.
func (h *Harness) runAll(name dataset.Preset, pref tops.Preference, k int) (incg, fmg, nc, fmnc AlgoResult, err error) {
	if incg, err = h.runINCG(name, pref, k, false); err != nil {
		return
	}
	if fmg, err = h.runINCG(name, pref, k, true); err != nil {
		return
	}
	if nc, err = h.runNetClus(name, pref, k, false); err != nil {
		return
	}
	fmnc, err = h.runNetClus(name, pref, k, true)
	return
}

// kGrid returns the k sweep (Fig. 4/5/6 use 1..25).
func (h *Harness) kGrid() []int {
	if h.cfg.Quick {
		return []int{2, 5}
	}
	return []int{1, 5, 10, 15, 20, 25}
}

// tauGrid returns the τ sweep in km.
func (h *Harness) tauGrid() []float64 {
	if h.cfg.Quick {
		return []float64{0.4, 0.8}
	}
	return []float64{0.2, 0.4, 0.8, 1.6, 2.4}
}

// defaultK and defaultTau mirror the paper's defaults (k=5, τ=0.8 km).
const (
	defaultK   = 5
	defaultTau = 0.8
)

// mustRatio formats b/a as a "×" factor, guarding zero.
func mustRatio(a, b float64) string {
	if a <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1fx", b/a)
}
