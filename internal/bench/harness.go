// Package bench reproduces every table and figure of the paper's evaluation
// (§8). Each experiment is a named entry in the registry; cmd/topsbench and
// the root-level testing.B benchmarks drive the same code.
//
// Absolute numbers differ from the paper — the datasets are synthetic
// stand-ins at reduced scale and the hardware differs — but each experiment
// reports the same rows/series so the *shape* (who wins, by what factor,
// where crossovers fall) can be compared. EXPERIMENTS.md records that
// comparison.
package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"netclus/internal/core"
	"netclus/internal/dataset"
	"netclus/internal/engine"
	"netclus/internal/tops"
)

// Config scales and seeds a harness run.
type Config struct {
	// Scale is the fraction of the paper's dataset sizes (default 0.04).
	Scale float64
	// Seed drives all synthetic generation.
	Seed int64
	// Quick trims parameter grids and shrinks datasets so the whole
	// registry runs in CI time; results keep their shape but are noisier.
	Quick bool
	// SnapshotDir holds index snapshots (cmd/topsbench -save/-load).
	// SnapshotLoad warm-starts harness indexes from it when a valid entry
	// exists; SnapshotSave writes one after every cold build. Both are
	// no-ops with an empty dir.
	SnapshotDir  string
	SnapshotLoad bool
	SnapshotSave bool
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		if c.Quick {
			c.Scale = 0.012
		} else {
			c.Scale = 0.02
		}
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// Harness lazily builds and caches the expensive shared artifacts
// (datasets, distance indexes, NETCLUS indexes) across experiments in one
// process. All methods are safe for concurrent use.
type Harness struct {
	cfg Config

	mu       sync.Mutex
	datasets map[string]*dataset.Dataset
	distIdxs map[string]*tops.DistanceIndex
	ncIdxs   map[string]*core.Index
	engines  map[string]*engine.Engine
}

// NewHarness returns a harness for the config.
func NewHarness(cfg Config) *Harness {
	return &Harness{
		cfg:      cfg.withDefaults(),
		datasets: map[string]*dataset.Dataset{},
		distIdxs: map[string]*tops.DistanceIndex{},
		ncIdxs:   map[string]*core.Index{},
		engines:  map[string]*engine.Engine{},
	}
}

// Config returns the effective configuration.
func (h *Harness) Config() Config { return h.cfg }

// Dataset returns the named preset at the harness scale, cached.
func (h *Harness) Dataset(name dataset.Preset) (*dataset.Dataset, error) {
	key := string(name)
	h.mu.Lock()
	defer h.mu.Unlock()
	if d, ok := h.datasets[key]; ok {
		return d, nil
	}
	d, err := dataset.Load(name, dataset.Config{Scale: h.cfg.Scale, Seed: h.cfg.Seed})
	if err != nil {
		return nil, err
	}
	h.datasets[key] = d
	return d, nil
}

// DistIndex returns the distance index of the named dataset with the given
// horizon, cached by (dataset, horizon).
func (h *Harness) DistIndex(name dataset.Preset, maxDetourKm float64) (*tops.DistanceIndex, error) {
	d, err := h.Dataset(name)
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("%s|%.3f", name, maxDetourKm)
	h.mu.Lock()
	defer h.mu.Unlock()
	if idx, ok := h.distIdxs[key]; ok {
		return idx, nil
	}
	idx, err := tops.BuildDistanceIndex(d.Instance, maxDetourKm)
	if err != nil {
		return nil, err
	}
	h.distIdxs[key] = idx
	return idx, nil
}

// NetClus returns the NETCLUS index of the named dataset built with the
// given γ and τ ladder, cached in-process and — when the config enables
// snapshots — warm-started from (and saved to) the on-disk snapshot cache.
func (h *Harness) NetClus(name dataset.Preset, gamma, tauMin, tauMax float64) (*core.Index, error) {
	d, err := h.Dataset(name)
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("%s|%.3f|%.3f|%.3f", name, gamma, tauMin, tauMax)
	h.mu.Lock()
	defer h.mu.Unlock()
	if idx, ok := h.ncIdxs[key]; ok {
		return idx, nil
	}
	opts := core.Options{
		Gamma: gamma, TauMin: tauMin, TauMax: tauMax,
		GDSP: core.GDSPOptions{UseFM: true, F: 16, Seed: uint64(h.cfg.Seed)},
	}
	var idx *core.Index
	if h.cfg.SnapshotDir != "" {
		snapKey := dataset.SnapshotKey(name, dataset.Config{Scale: h.cfg.Scale, Seed: h.cfg.Seed}, opts)
		// An explicit -save that cannot write is a real failure (unlike the
		// advisory dataset cache), so the write error propagates.
		var warm bool
		idx, warm, err = dataset.LoadOrBuild(filepath.Join(h.cfg.SnapshotDir, snapKey),
			d.Instance, opts, h.cfg.SnapshotLoad, h.cfg.SnapshotSave)
		if err != nil {
			return nil, fmt.Errorf("bench: %w", err)
		}
		if h.cfg.SnapshotLoad && !warm {
			// A cold build under -load would silently corrupt warm-start
			// measurements; say so (mismatched scale/seed/options, or an
			// empty snapshot dir).
			fmt.Fprintf(os.Stderr, "bench: %s: snapshot miss (%s), cold build\n", name, snapKey)
		}
	} else {
		idx, err = core.Build(d.Instance, opts)
		if err != nil {
			return nil, err
		}
	}
	h.ncIdxs[key] = idx
	return idx, nil
}

// Engine returns the serving engine wrapping the cached NETCLUS index of
// the named dataset — one engine per index, honoring the engine's ownership
// contract. The cover cache is disabled so that per-query timings keep the
// paper's semantics (every query pays its own online phase); the engine
// still parallelizes the cover fill.
func (h *Harness) Engine(name dataset.Preset, gamma, tauMin, tauMax float64) (*engine.Engine, error) {
	idx, err := h.NetClus(name, gamma, tauMin, tauMax)
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("%s|%.3f|%.3f|%.3f", name, gamma, tauMin, tauMax)
	h.mu.Lock()
	defer h.mu.Unlock()
	if e, ok := h.engines[key]; ok {
		return e, nil
	}
	e, err := wrapEngine(idx)
	if err != nil {
		return nil, err
	}
	h.engines[key] = e
	return e, nil
}

// wrapEngine wraps an experiment-local index in a throwaway serving engine
// with the harness's paper-semantics caching policy (cover cache disabled,
// so every query pays its own online phase). Experiments never call
// core.Index query/update methods directly: all traffic goes through an
// Engine, the same surface the CLIs and external users exercise.
func wrapEngine(idx *core.Index) (*engine.Engine, error) {
	return engine.New(idx, engine.Options{DisableCoverCache: true})
}

// Standard ladder used by most experiments: serves τ in [0.2, 6.4).
// The distance-index horizon covers the τ grids below; like the paper's
// 10 km pre-computation horizon it bounds the INCG baseline's reach. At
// the scaled-down city spans, 2.6 km plays the role the paper's 10 km
// plays on full Beijing.
const (
	stdTauMin = 0.2
	stdTauMax = 6.4
	stdGamma  = 0.75
	stdDmax   = 2.6
)

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render returns an aligned ASCII rendering.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, hd := range t.Headers {
		widths[i] = len(hd)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(h *Harness) (*Table, error)
}

var (
	registryMu sync.Mutex
	registry   = map[string]Experiment{}
)

func register(e Experiment) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[e.ID]; dup {
		panic("bench: duplicate experiment id " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, error) {
	registryMu.Lock()
	defer registryMu.Unlock()
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("bench: unknown experiment %q (use List)", id)
	}
	return e, nil
}

// List returns all experiments sorted by id.
func List() []Experiment {
	registryMu.Lock()
	defer registryMu.Unlock()
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// fmtF renders a float compactly.
func fmtF(v float64) string { return fmt.Sprintf("%.2f", v) }

// fmtPct renders a fraction as a percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// fmtMs renders seconds as milliseconds.
func fmtMs(sec float64) string { return fmt.Sprintf("%.1f", sec*1000) }

// fmtMB renders bytes as megabytes.
func fmtMB(b int64) string { return fmt.Sprintf("%.2f", float64(b)/(1<<20)) }
