package bench

import (
	"context"
	"fmt"
	"math"
	"time"

	"netclus/internal/core"
	"netclus/internal/dataset"
	"netclus/internal/gen"
	"netclus/internal/roadnet"
	"netclus/internal/tops"
	"netclus/internal/trajectory"
)

// Ablation 1: cluster representative strategy (§4.2 of the paper discusses
// closest-to-center vs most-frequently-accessed and picks the former as
// "marginally better"). We re-run queries with representatives swapped to
// the most-frequent site per cluster and compare.
func init() {
	register(Experiment{
		ID:    "ablation-rep",
		Title: "Ablation: representative choice — closest-to-center vs most-frequent site",
		Run: func(h *Harness) (*Table, error) {
			d, err := h.Dataset(dataset.Beijing)
			if err != nil {
				return nil, err
			}
			distIdx, err := h.DistIndex(dataset.Beijing, stdDmax)
			if err != nil {
				return nil, err
			}
			idx, err := h.NetClus(dataset.Beijing, stdGamma, stdTauMin, stdTauMax)
			if err != nil {
				return nil, err
			}
			eng, err := h.Engine(dataset.Beijing, stdGamma, stdTauMin, stdTauMax)
			if err != nil {
				return nil, err
			}
			pref := tops.Binary(defaultTau)
			m := float64(d.Instance.M())

			baseQ, err := eng.Query(context.Background(), core.QueryOptions{K: defaultK, Pref: pref})
			if err != nil {
				return nil, err
			}
			baseU, _ := idx.EvaluateExact(distIdx, pref, baseQ.Sites)

			// Build a second index and swap in most-frequent representatives.
			idx2, err := core.Build(d.Instance, core.Options{
				Gamma: stdGamma, TauMin: stdTauMin, TauMax: stdTauMax,
				GDSP: core.GDSPOptions{UseFM: true, F: 16, Seed: uint64(h.cfg.Seed)},
			})
			if err != nil {
				return nil, err
			}
			siteSet := map[roadnet.NodeID]bool{}
			for _, s := range d.Instance.Sites {
				siteSet[s] = true
			}
			// Node -> trajectory frequency.
			freq := make([]int, d.Instance.G.NumNodes())
			d.Instance.Trajs.ForEach(func(_ trajectory.ID, tr *trajectory.Trajectory) {
				for _, v := range tr.Nodes {
					freq[v]++
				}
			})
			for _, ins := range idx2.Instances {
				for ci := range ins.Clusters {
					cl := &ins.Clusters[ci]
					best, bestFreq := roadnet.InvalidNode, -1
					bestDr := math.Inf(1)
					for i, v := range cl.Members {
						if siteSet[v] && freq[v] > bestFreq {
							best, bestFreq, bestDr = v, freq[v], cl.MemberDr[i]
						}
					}
					if best != roadnet.InvalidNode {
						cl.Rep = best
						cl.RepDr = bestDr
					}
				}
			}
			eng2, err := wrapEngine(idx2)
			if err != nil {
				return nil, err
			}
			freqQ, err := eng2.Query(context.Background(), core.QueryOptions{K: defaultK, Pref: pref})
			if err != nil {
				return nil, err
			}
			freqU, _ := idx2.EvaluateExact(distIdx, pref, freqQ.Sites)

			tbl := &Table{
				ID:      "ablation-rep",
				Title:   "Representative strategy",
				Headers: []string{"strategy", "util%"},
			}
			tbl.AddRow("closest-to-center", fmtPct(baseU/m))
			tbl.AddRow("most-frequent", fmtPct(freqU/m))
			tbl.AddNote("paper: the two are close with closest-to-center marginally better (§4.2)")
			return tbl, nil
		},
	})
}

// Ablation 2: plain (paper Algorithm 1) vs lazy (CELF) greedy evaluation.
func init() {
	register(Experiment{
		ID:    "ablation-lazy",
		Title: "Ablation: plain incremental greedy vs lazy (CELF) evaluation",
		Run: func(h *Harness) (*Table, error) {
			distIdx, err := h.DistIndex(dataset.Beijing, stdDmax)
			if err != nil {
				return nil, err
			}
			tbl := &Table{
				ID:      "ablation-lazy",
				Title:   "Greedy evaluation strategy",
				Headers: []string{"tau km", "k", "plain ms", "lazy ms", "utility equal?"},
			}
			ks := []int{5, 25}
			if h.cfg.Quick {
				ks = []int{5}
			}
			for _, tau := range []float64{0.4, 0.8} {
				cs, err := tops.BuildCoverSets(distIdx, tops.Binary(tau))
				if err != nil {
					return nil, err
				}
				for _, k := range ks {
					t0 := time.Now()
					plain, err := tops.IncGreedy(cs, tops.GreedyOptions{K: k})
					if err != nil {
						return nil, err
					}
					plainSec := time.Since(t0).Seconds()
					t1 := time.Now()
					lazy, err := tops.IncGreedy(cs, tops.GreedyOptions{K: k, Lazy: true})
					if err != nil {
						return nil, err
					}
					lazySec := time.Since(t1).Seconds()
					tbl.AddRow(fmtF(tau), fmt.Sprint(k), fmtMs(plainSec), fmtMs(lazySec),
						fmt.Sprint(math.Abs(plain.Utility-lazy.Utility) < 1e-9))
				}
			}
			tbl.AddNote("both are greedy maximizers; lazy avoids SC-side updates at the cost of re-scans")
			return tbl, nil
		},
	})
}

// Ablation 3: trajectory compression. The index stores one TL entry per
// (trajectory, cluster) — collapsing consecutive same-cluster nodes (§4.3).
// We report the achieved compression ratio per instance.
func init() {
	register(Experiment{
		ID:    "ablation-compression",
		Title: "Ablation: trajectory compression ratio per index instance",
		Run: func(h *Harness) (*Table, error) {
			d, err := h.Dataset(dataset.Beijing)
			if err != nil {
				return nil, err
			}
			idx, err := h.NetClus(dataset.Beijing, stdGamma, stdTauMin, stdTauMax)
			if err != nil {
				return nil, err
			}
			rawNodes := 0
			d.Instance.Trajs.ForEach(func(_ trajectory.ID, tr *trajectory.Trajectory) {
				rawNodes += tr.Len()
			})
			tbl := &Table{
				ID:      "ablation-compression",
				Title:   "Trajectory compression",
				Headers: []string{"R_p km", "raw nodes", "TL entries", "compression"},
			}
			for p := range idx.Instances {
				entries := 0
				for ci := range idx.Instances[p].Clusters {
					entries += len(idx.Instances[p].Clusters[ci].TL)
				}
				tbl.AddRow(fmt.Sprintf("%.4f", idx.Instances[p].Radius),
					fmt.Sprint(rawNodes), fmt.Sprint(entries),
					mustRatio(float64(entries), float64(rawNodes)))
			}
			tbl.AddNote("coarser instances compress more — the driver of NETCLUS's memory wins (Table 9)")
			return tbl, nil
		},
	})
}

// Ablation 5: update-path cost — the paper's §3.4 argument that INC-GREEDY
// "is not amenable to updates" made measurable: adding the same batch of
// trajectories through the baseline's distance index (two bounded searches
// per trajectory node) versus the NETCLUS index (a walk through the
// clustering).
func init() {
	register(Experiment{
		ID:    "ablation-updatecost",
		Title: "Ablation: trajectory-add cost — INCG distance index vs NETCLUS index",
		Run: func(h *Harness) (*Table, error) {
			d, err := h.Dataset(dataset.Beijing)
			if err != nil {
				return nil, err
			}
			batch := 200
			if h.cfg.Quick {
				batch = 40
			}
			fresh, err := gen.GenerateTrajectories(d.City, gen.TrajConfig{Count: batch, Seed: h.cfg.Seed + 31})
			if err != nil {
				return nil, err
			}
			// Private copies so the harness's cached artifacts stay clean.
			privStore := trajectory.NewStore(d.Instance.M())
			d.Instance.Trajs.ForEach(func(_ trajectory.ID, tr *trajectory.Trajectory) { privStore.Add(tr) })
			inst, err := tops.NewInstance(d.Instance.G, privStore, d.Instance.Sites)
			if err != nil {
				return nil, err
			}
			distIdx, err := tops.BuildDistanceIndex(inst, stdDmax)
			if err != nil {
				return nil, err
			}
			ncIdx, err := core.Build(inst, core.Options{
				Gamma: stdGamma, TauMin: stdTauMin, TauMax: stdTauMax,
				GDSP: core.GDSPOptions{UseFM: true, F: 16, Seed: uint64(h.cfg.Seed)},
			})
			if err != nil {
				return nil, err
			}
			ncEng, err := wrapEngine(ncIdx)
			if err != nil {
				return nil, err
			}
			// NETCLUS first: it appends to the shared store, then the
			// baseline indexes the same appended trajectories.
			t0 := time.Now()
			start := inst.M()
			for i := 0; i < fresh.Len(); i++ {
				if _, err := ncEng.AddTrajectory(fresh.Get(trajectory.ID(i))); err != nil {
					return nil, err
				}
			}
			ncSec := time.Since(t0).Seconds()
			t1 := time.Now()
			for i := 0; i < fresh.Len(); i++ {
				tid := trajectory.ID(start + i)
				if err := distIdx.AddTrajectory(tid, privStore.Get(tid)); err != nil {
					return nil, err
				}
			}
			incgSec := time.Since(t1).Seconds()
			tbl := &Table{
				ID:      "ablation-updatecost",
				Title:   "Per-batch trajectory-add cost",
				Headers: []string{"batch", "INCG dist-index s", "NETCLUS s", "INCG/NC"},
			}
			tbl.AddRow(fmt.Sprint(batch), fmtF(incgSec), fmtF(ncSec), mustRatio(ncSec, incgSec))
			tbl.AddNote("§3.4: the baseline re-runs bounded searches per trajectory node; NETCLUS only walks the clustering")
			return tbl, nil
		},
	})
}

// Ablation 4: FM bound pruning in FMGreedy — scan with the sorted
// own-estimate early exit (paper §3.5) vs exhaustive scan.
func init() {
	register(Experiment{
		ID:    "ablation-fmprune",
		Title: "Ablation: FM sketch union-scan pruning effectiveness",
		Run: func(h *Harness) (*Table, error) {
			distIdx, err := h.DistIndex(dataset.Beijing, stdDmax)
			if err != nil {
				return nil, err
			}
			cs, err := tops.BuildCoverSets(distIdx, tops.Binary(defaultTau))
			if err != nil {
				return nil, err
			}
			tbl := &Table{
				ID:      "ablation-fmprune",
				Title:   "FM pruning",
				Headers: []string{"f", "FMG ms", "selected", "util%"},
			}
			m := float64(cs.M)
			for _, f := range []int{8, 30} {
				t0 := time.Now()
				res, err := tops.FMGreedy(cs, tops.FMGreedyOptions{K: defaultK, F: f, Seed: uint64(h.cfg.Seed)})
				if err != nil {
					return nil, err
				}
				sec := time.Since(t0).Seconds()
				tbl.AddRow(fmt.Sprint(f), fmtMs(sec), fmt.Sprint(len(res.Selected)), fmtPct(res.Utility/m))
			}
			tbl.AddNote("the sorted own-estimate bound (paper §3.5) stops each scan early; larger f costs linearly more per union")
			return tbl, nil
		},
	})
}
