package bench

import (
	"context"
	"fmt"
	"math"
	"time"

	"netclus/internal/core"
	"netclus/internal/dataset"
	"netclus/internal/tops"
)

// Table 7: γ sweep — index build time, space, relative error vs INCG.
func init() {
	register(Experiment{
		ID:    "table7",
		Title: "Resolution parameter γ: build time, index size, relative error vs INCG",
		Run: func(h *Harness) (*Table, error) {
			d, err := h.Dataset(dataset.Beijing)
			if err != nil {
				return nil, err
			}
			distIdx, err := h.DistIndex(dataset.Beijing, stdDmax)
			if err != nil {
				return nil, err
			}
			pref := tops.Binary(defaultTau)
			cs, err := tops.BuildCoverSets(distIdx, pref)
			if err != nil {
				return nil, err
			}
			incg, err := tops.IncGreedy(cs, tops.GreedyOptions{K: defaultK})
			if err != nil {
				return nil, err
			}
			gammas := []float64{0.25, 0.50, 0.75, 1.00}
			if h.cfg.Quick {
				gammas = []float64{0.50, 1.00}
			}
			tbl := &Table{
				ID:      "table7",
				Title:   "γ sweep",
				Headers: []string{"gamma", "instances", "build s", "space MB", "rel err % vs INCG"},
			}
			for _, g := range gammas {
				t0 := time.Now()
				idx, err := core.Build(d.Instance, core.Options{
					Gamma: g, TauMin: stdTauMin, TauMax: stdTauMax,
					GDSP: core.GDSPOptions{UseFM: true, F: 16, Seed: uint64(h.cfg.Seed)},
				})
				if err != nil {
					return nil, err
				}
				buildSec := time.Since(t0).Seconds()
				eng, err := wrapEngine(idx)
				if err != nil {
					return nil, err
				}
				qr, err := eng.Query(context.Background(), core.QueryOptions{K: defaultK, Pref: pref})
				if err != nil {
					return nil, err
				}
				exactU, _ := idx.EvaluateExact(distIdx, pref, qr.Sites)
				relErr := 0.0
				if incg.Utility > 0 {
					relErr = math.Max(0, (incg.Utility-exactU)/incg.Utility)
				}
				tbl.AddRow(fmtF(g), fmt.Sprint(len(idx.Instances)), fmtF(buildSec),
					fmtMB(idx.MemoryBytes()), fmtPct(relErr))
			}
			tbl.AddNote("paper shape: smaller γ -> more instances, more space and build time, lower error (3.5%% at 0.25 to 5.2%% at 1.0)")
			return tbl, nil
		},
	})
}

// Table 8: FM sketch count f sweep.
func init() {
	register(Experiment{
		ID:    "table8",
		Title: "FM sketch count f: utility error and speed-up vs exact NETCLUS greedy",
		Run: func(h *Harness) (*Table, error) {
			idx, err := h.NetClus(dataset.Beijing, stdGamma, stdTauMin, stdTauMax)
			if err != nil {
				return nil, err
			}
			eng, err := h.Engine(dataset.Beijing, stdGamma, stdTauMin, stdTauMax)
			if err != nil {
				return nil, err
			}
			distIdx, err := h.DistIndex(dataset.Beijing, stdDmax)
			if err != nil {
				return nil, err
			}
			pref := tops.Binary(defaultTau)
			t0 := time.Now()
			base, err := eng.Query(context.Background(), core.QueryOptions{K: defaultK, Pref: pref})
			if err != nil {
				return nil, err
			}
			baseSec := time.Since(t0).Seconds()
			baseU, _ := idx.EvaluateExact(distIdx, pref, base.Sites)

			fs := []int{1, 2, 4, 10, 20, 30, 40, 50, 100}
			if h.cfg.Quick {
				fs = []int{1, 10, 30}
			}
			tbl := &Table{
				ID:      "table8",
				Title:   "f sweep (NETCLUS vs FM-NETCLUS)",
				Headers: []string{"f", "NC util%", "FMNC util%", "rel err %", "NC ms", "FMNC ms", "speed-up"},
			}
			m := float64(idx.TopsInstance().M())
			for _, f := range fs {
				t1 := time.Now()
				fmq, err := eng.Query(context.Background(), core.QueryOptions{K: defaultK, Pref: pref, UseFM: true, F: f, Seed: uint64(h.cfg.Seed)})
				if err != nil {
					return nil, err
				}
				fmSec := time.Since(t1).Seconds()
				fmU, _ := idx.EvaluateExact(distIdx, pref, fmq.Sites)
				relErr := 0.0
				if baseU > 0 {
					relErr = math.Max(0, (baseU-fmU)/baseU)
				}
				tbl.AddRow(fmt.Sprint(f), fmtPct(baseU/m), fmtPct(fmU/m), fmtPct(relErr),
					fmtMs(baseSec), fmtMs(fmSec), mustRatio(fmSec, baseSec))
			}
			tbl.AddNote("paper shape: error falls from ~44%% (f=1) to ~2%% (f=50); speed-up shrinks as f grows and inverts near f=100")
			return tbl, nil
		},
	})
}

// Table 11: per-radius index construction statistics.
func init() {
	register(Experiment{
		ID:    "table11",
		Title: "Index construction details per cluster radius (Beijing)",
		Run: func(h *Harness) (*Table, error) {
			idx, err := h.NetClus(dataset.Beijing, stdGamma, stdTauMin, stdTauMax)
			if err != nil {
				return nil, err
			}
			tbl := &Table{
				ID:      "table11",
				Title:   "Per-radius clustering statistics",
				Headers: []string{"R_p km", "clusters", "avg |Λ|", "avg |TL|", "avg |CL|", "build s"},
			}
			for p := range idx.Instances {
				st := idx.Stats(p)
				tbl.AddRow(fmt.Sprintf("%.4f", st.Radius), fmt.Sprint(st.NumClusters),
					fmtF(st.AvgMembers), fmtF(st.AvgTL), fmtF(st.AvgCL), fmtF(st.BuildSeconds))
			}
			tbl.AddNote("paper shape: clusters fall ~exponentially with radius while |Λ| and |TL| grow; |CL| rises then falls")
			return tbl, nil
		},
	})
}

// Table 12: Jaccard-similarity clustering baseline (Appendix B.1).
func init() {
	register(Experiment{
		ID:    "table12",
		Title: "Jaccard-similarity clustering baseline: cost vs τ (α=0.8)",
		Run: func(h *Harness) (*Table, error) {
			distIdx, err := h.DistIndex(dataset.Beijing, stdDmax)
			if err != nil {
				return nil, err
			}
			taus := []float64{0.2, 0.4, 0.8, 1.2}
			if h.cfg.Quick {
				taus = []float64{0.4, 0.8}
			}
			tbl := &Table{
				ID:      "table12",
				Title:   "Jaccard clustering cost",
				Headers: []string{"tau km", "clusters", "time s", "TC entries MB"},
			}
			for _, tau := range taus {
				cs, err := tops.BuildCoverSets(distIdx, tops.Binary(tau))
				if err != nil {
					return nil, err
				}
				res, err := core.JaccardCluster(cs, 0.8)
				if err != nil {
					return nil, err
				}
				tbl.AddRow(fmtF(tau), fmt.Sprint(res.NumClusters),
					fmtF(res.BuildTime.Seconds()), fmtMB(res.PairBytes))
			}
			tbl.AddNote("paper shape: cost grows steeply with τ and OOMs at 2.4 km — clustering must rerun per query τ, unlike NETCLUS")
			return tbl, nil
		},
	})
}
