package bench

import (
	"context"
	"fmt"
	"time"

	"netclus/internal/core"
	"netclus/internal/dataset"
	"netclus/internal/gen"
	"netclus/internal/roadnet"
	"netclus/internal/tops"
	"netclus/internal/trajectory"
)

// subsetInstance builds a TOPS instance over the dataset with only a
// fraction of the candidate sites / trajectories, for the scalability
// sweeps of Fig. 10.
func subsetInstance(d *dataset.Dataset, siteFrac, trajFrac float64, seed int64) (*tops.Instance, error) {
	sites := d.Instance.Sites
	if siteFrac < 1 {
		n := int(float64(len(sites)) * siteFrac)
		if n < 10 {
			n = 10
		}
		sub, err := gen.SampleSites(d.Instance.G, gen.SiteConfig{Count: n, Seed: seed})
		if err != nil {
			return nil, err
		}
		sites = sub
	}
	trajs := d.Instance.Trajs
	if trajFrac < 1 {
		n := int(float64(trajs.Len()) * trajFrac)
		if n < 10 {
			n = 10
		}
		ids := d.SampleTrajectoryIDs(n)
		trajs = trajs.Sample(ids)
	}
	return tops.NewInstance(d.Instance.G, trajs, sites)
}

// runScalePoint measures INCG and NETCLUS query times on a derived
// instance. Both structures are rebuilt per point (the sweep varies the
// offline inputs); only the online phase is timed.
func runScalePoint(inst *tops.Instance, seed int64) (incgSec, ncSec float64, err error) {
	distIdx, err := tops.BuildDistanceIndex(inst, stdDmax)
	if err != nil {
		return
	}
	pref := tops.Binary(defaultTau)
	t0 := time.Now()
	cs, err := tops.BuildCoverSets(distIdx, pref)
	if err != nil {
		return
	}
	if _, err = tops.IncGreedy(cs, tops.GreedyOptions{K: defaultK}); err != nil {
		return
	}
	incgSec = time.Since(t0).Seconds()

	idx, err := core.Build(inst, core.Options{
		Gamma: stdGamma, TauMin: stdTauMin, TauMax: stdTauMax,
		GDSP: core.GDSPOptions{UseFM: true, F: 16, Seed: uint64(seed)},
	})
	if err != nil {
		return
	}
	eng, err := wrapEngine(idx)
	if err != nil {
		return
	}
	t1 := time.Now()
	if _, err = eng.Query(context.Background(), core.QueryOptions{K: defaultK, Pref: pref}); err != nil {
		return
	}
	ncSec = time.Since(t1).Seconds()
	return
}

// Fig. 10a: runtime vs number of candidate sites.
func init() {
	register(Experiment{
		ID:    "fig10a",
		Title: "Scalability: runtime vs number of candidate sites (k=5, τ=0.8)",
		Run: func(h *Harness) (*Table, error) {
			d, err := h.Dataset(dataset.Beijing)
			if err != nil {
				return nil, err
			}
			fracs := []float64{0.4, 0.6, 0.8, 1.0}
			if h.cfg.Quick {
				fracs = []float64{0.5, 1.0}
			}
			tbl := &Table{
				ID:      "fig10a",
				Title:   "Runtime vs |S|",
				Headers: []string{"sites", "INCG ms", "NC ms", "NC speedup"},
			}
			for _, f := range fracs {
				inst, err := subsetInstance(d, f, 1, h.cfg.Seed+11)
				if err != nil {
					return nil, err
				}
				incgSec, ncSec, err := runScalePoint(inst, h.cfg.Seed)
				if err != nil {
					return nil, err
				}
				tbl.AddRow(fmt.Sprint(inst.N()), fmtMs(incgSec), fmtMs(ncSec), mustRatio(ncSec, incgSec))
			}
			tbl.AddNote("paper shape: both grow with |S|; NETCLUS about an order of magnitude faster throughout")
			return tbl, nil
		},
	})
}

// Fig. 10b: runtime vs number of trajectories.
func init() {
	register(Experiment{
		ID:    "fig10b",
		Title: "Scalability: runtime vs number of trajectories (k=5, τ=0.8)",
		Run: func(h *Harness) (*Table, error) {
			d, err := h.Dataset(dataset.Beijing)
			if err != nil {
				return nil, err
			}
			fracs := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
			if h.cfg.Quick {
				fracs = []float64{0.5, 1.0}
			}
			tbl := &Table{
				ID:      "fig10b",
				Title:   "Runtime vs |T|",
				Headers: []string{"trajectories", "INCG ms", "NC ms", "NC speedup"},
			}
			for _, f := range fracs {
				inst, err := subsetInstance(d, 1, f, h.cfg.Seed+13)
				if err != nil {
					return nil, err
				}
				incgSec, ncSec, err := runScalePoint(inst, h.cfg.Seed)
				if err != nil {
					return nil, err
				}
				tbl.AddRow(fmt.Sprint(inst.M()), fmtMs(incgSec), fmtMs(ncSec), mustRatio(ncSec, incgSec))
			}
			tbl.AddNote("paper shape: near-linear growth in m for INCG; NETCLUS much flatter")
			return tbl, nil
		},
	})
}

// Fig. 11: city geometries.
func init() {
	register(Experiment{
		ID:    "fig11",
		Title: "City geometries: utility and time on star/mesh/polycentric (k=5, τ=0.8)",
		Run: func(h *Harness) (*Table, error) {
			tbl := &Table{
				ID:      "fig11",
				Title:   "Effect of topology",
				Headers: []string{"city", "topology", "INCG util%", "NC util%", "INCG ms", "NC ms"},
			}
			pref := tops.Binary(defaultTau)
			for _, name := range []dataset.Preset{dataset.NewYork, dataset.Atlanta, dataset.Bangalore} {
				d, err := h.Dataset(name)
				if err != nil {
					return nil, err
				}
				incg, err := h.runINCG(name, pref, defaultK, false)
				if err != nil {
					return nil, err
				}
				nc, err := h.runNetClus(name, pref, defaultK, false)
				if err != nil {
					return nil, err
				}
				tbl.AddRow(string(name), d.City.Config.Topology.String(),
					fmtPct(incg.UtilityPct), fmtPct(nc.UtilityPct),
					fmtMs(incg.Seconds), fmtMs(nc.Seconds))
			}
			tbl.AddNote("paper shape: polycentric Bangalore highest utility; meshy Atlanta lowest (diffuse trajectories); times comparable")
			return tbl, nil
		},
	})
}

// Fig. 12: trajectory length classes.
func init() {
	register(Experiment{
		ID:    "fig12",
		Title: "Trajectory length classes: utility and time per class (k=5, τ=0.8)",
		Run: func(h *Harness) (*Table, error) {
			d, err := h.Dataset(dataset.Beijing)
			if err != nil {
				return nil, err
			}
			stats := d.Instance.Trajs.ComputeStats()
			// Four equal-width length classes between the 10th and 90th
			// percentile span (the paper uses fixed km bands on Beijing).
			lo, hi := stats.MinLength, stats.MaxLength
			width := (hi - lo) / 4
			var bounds [][2]float64
			for i := 0; i < 4; i++ {
				bounds = append(bounds, [2]float64{lo + float64(i)*width, lo + float64(i+1)*width + 1e-9})
			}
			classes := d.Instance.Trajs.ClassifyByLength(bounds)
			tbl := &Table{
				ID:      "fig12",
				Title:   "Effect of trajectory length",
				Headers: []string{"class km", "count", "INCG util%", "NC util%", "INCG ms", "NC ms"},
			}
			for _, cl := range classes {
				if len(cl.IDs) < 5 {
					continue
				}
				sub := d.Instance.Trajs.Sample(cl.IDs)
				inst, err := tops.NewInstance(d.Instance.G, sub, d.Instance.Sites)
				if err != nil {
					return nil, err
				}
				distIdx, err := tops.BuildDistanceIndex(inst, stdDmax)
				if err != nil {
					return nil, err
				}
				pref := tops.Binary(defaultTau)
				t0 := time.Now()
				cs, err := tops.BuildCoverSets(distIdx, pref)
				if err != nil {
					return nil, err
				}
				incg, err := tops.IncGreedy(cs, tops.GreedyOptions{K: defaultK})
				if err != nil {
					return nil, err
				}
				incgSec := time.Since(t0).Seconds()
				idx, err := core.Build(inst, core.Options{
					Gamma: stdGamma, TauMin: stdTauMin, TauMax: stdTauMax,
					GDSP: core.GDSPOptions{UseFM: true, F: 16, Seed: uint64(h.cfg.Seed)},
				})
				if err != nil {
					return nil, err
				}
				eng, err := wrapEngine(idx)
				if err != nil {
					return nil, err
				}
				t1 := time.Now()
				qr, err := eng.Query(context.Background(), core.QueryOptions{K: defaultK, Pref: pref})
				if err != nil {
					return nil, err
				}
				ncSec := time.Since(t1).Seconds()
				ncU, _ := idx.EvaluateExact(distIdx, pref, qr.Sites)
				m := float64(inst.M())
				tbl.AddRow(fmt.Sprintf("%.1f-%.1f", cl.MinKm, cl.MaxKm), fmt.Sprint(len(cl.IDs)),
					fmtPct(incg.Utility/m), fmtPct(ncU/m), fmtMs(incgSec), fmtMs(ncSec))
			}
			tbl.AddNote("paper shape: longer trajectories are easier to cover (higher utility) and cost more update time")
			return tbl, nil
		},
	})
}

// Table 10: dynamic update cost.
func init() {
	register(Experiment{
		ID:    "table10",
		Title: "Index update cost: batched trajectory and site additions",
		Run: func(h *Harness) (*Table, error) {
			d, err := h.Dataset(dataset.Beijing)
			if err != nil {
				return nil, err
			}
			// Build a dedicated index over 70% of sites so site additions
			// have room, and a trajectory store the updates extend.
			inst, err := subsetInstance(d, 0.7, 1, h.cfg.Seed+17)
			if err != nil {
				return nil, err
			}
			// Re-wrap with a private store so added trajectories don't leak
			// into the harness's cached dataset.
			privStore := trajectory.NewStore(inst.M())
			inst.Trajs.ForEach(func(_ trajectory.ID, tr *trajectory.Trajectory) { privStore.Add(tr) })
			inst, err = tops.NewInstance(inst.G, privStore, inst.Sites)
			if err != nil {
				return nil, err
			}
			idx, err := core.Build(inst, core.Options{
				Gamma: stdGamma, TauMin: stdTauMin, TauMax: stdTauMax,
				GDSP: core.GDSPOptions{UseFM: true, F: 16, Seed: uint64(h.cfg.Seed)},
			})
			if err != nil {
				return nil, err
			}
			eng, err := wrapEngine(idx)
			if err != nil {
				return nil, err
			}
			// Fresh trajectories to add, generated over the same city.
			batchSizes := []int{1000, 2000, 3000, 4000, 5000}
			if h.cfg.Quick {
				batchSizes = []int{100, 200}
			}
			total := 0
			for _, b := range batchSizes {
				total += b
			}
			fresh, err := gen.GenerateTrajectories(d.City, gen.TrajConfig{Count: total, Seed: h.cfg.Seed + 19})
			if err != nil {
				return nil, err
			}
			// Non-site nodes to add as sites.
			siteSet := map[int32]bool{}
			for _, s := range inst.Sites {
				siteSet[int32(s)] = true
			}
			tbl := &Table{
				ID:      "table10",
				Title:   "Index update cost",
				Headers: []string{"batch", "add-traj s", "add-site s"},
			}
			next := 0
			nextNode := int32(0)
			for _, b := range batchSizes {
				t0 := time.Now()
				for i := 0; i < b && next < fresh.Len(); i++ {
					tr := fresh.Get(trajectory.ID(next))
					next++
					if _, err := eng.AddTrajectory(tr); err != nil {
						return nil, err
					}
				}
				trajSec := time.Since(t0).Seconds()
				t1 := time.Now()
				added := 0
				for added < b && int(nextNode) < inst.G.NumNodes() {
					if !siteSet[nextNode] {
						if err := eng.AddSite(roadnet.NodeID(nextNode)); err == nil {
							siteSet[nextNode] = true
							added++
						}
					}
					nextNode++
				}
				siteSec := time.Since(t1).Seconds()
				tbl.AddRow(fmt.Sprint(b), fmtF(trajSec), fmtF(siteSec))
			}
			tbl.AddNote("paper shape: trajectory adds cost more than site adds (multiple clusters touched per trajectory); both scale linearly")
			return tbl, nil
		},
	})
}
