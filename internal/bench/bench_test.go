package bench

import (
	"strings"
	"testing"
)

// quickHarness shares one tiny harness across the experiment smoke tests.
var quickH = NewHarness(Config{Quick: true, Seed: 7})

func TestRegistryComplete(t *testing.T) {
	// Every paper artifact must have an experiment (DESIGN.md §4).
	want := []string{
		"fig4", "fig5a", "fig5b", "fig6a", "fig6b", "fig7a", "fig7b",
		"fig8", "fig9", "fig10a", "fig10b", "fig11", "fig12",
		"table7", "table8", "table9", "table10", "table11", "table12",
		"ablation-rep", "ablation-lazy", "ablation-compression", "ablation-fmprune",
		"ablation-updatecost",
	}
	have := map[string]bool{}
	for _, e := range List() {
		have[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
	if _, err := Get("fig4"); err != nil {
		t.Error(err)
	}
	if _, err := Get("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep skipped in -short mode")
	}
	for _, e := range List() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run(quickH)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Headers) {
					t.Fatalf("%s: row width %d != header width %d", e.ID, len(row), len(tbl.Headers))
				}
			}
			out := tbl.Render()
			if !strings.Contains(out, e.ID) {
				t.Errorf("%s: render missing id", e.ID)
			}
		})
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{ID: "x", Title: "t", Headers: []string{"a", "bb"}}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	tbl.AddNote("hello %d", 5)
	out := tbl.Render()
	for _, want := range []string{"== x — t ==", "333", "note: hello 5"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestHarnessCaching(t *testing.T) {
	h := NewHarness(Config{Quick: true, Seed: 3})
	a, err := h.Dataset("beijing-small")
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Dataset("beijing-small")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("dataset not cached")
	}
	i1, err := h.DistIndex("beijing-small", 2)
	if err != nil {
		t.Fatal(err)
	}
	i2, err := h.DistIndex("beijing-small", 2)
	if err != nil {
		t.Fatal(err)
	}
	if i1 != i2 {
		t.Error("distance index not cached")
	}
	i3, err := h.DistIndex("beijing-small", 3)
	if err != nil {
		t.Fatal(err)
	}
	if i1 == i3 {
		t.Error("different horizon shared a cache entry")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale <= 0 || c.Seed == 0 {
		t.Errorf("defaults not applied: %+v", c)
	}
	q := Config{Quick: true}.withDefaults()
	if q.Scale >= c.Scale {
		t.Error("quick scale should be smaller")
	}
}
