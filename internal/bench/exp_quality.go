package bench

import (
	"fmt"
	"time"

	"netclus/internal/dataset"
	"netclus/internal/tops"
)

// Fig. 4: comparison with the exact optimum on Beijing-Small.
func init() {
	register(Experiment{
		ID:    "fig4",
		Title: "Comparison with optimal on Beijing-Small (utility % and time vs k, τ=0.8)",
		Run: func(h *Harness) (*Table, error) {
			d, err := h.Dataset(dataset.BeijingSmall)
			if err != nil {
				return nil, err
			}
			distIdx, err := h.DistIndex(dataset.BeijingSmall, stdDmax)
			if err != nil {
				return nil, err
			}
			pref := tops.Binary(defaultTau)
			cs, err := tops.BuildCoverSets(distIdx, pref)
			if err != nil {
				return nil, err
			}
			ks := []int{1, 3, 5, 7, 9, 11, 13, 15}
			maxNodes := int64(3_000_000)
			if h.cfg.Quick {
				ks = []int{1, 3, 5}
				maxNodes = 100_000
			}
			tbl := &Table{
				ID:    "fig4",
				Title: "OPT vs INCG vs FMG vs NETCLUS vs FMNETCLUS, Beijing-Small",
				Headers: []string{"k", "OPT util%", "INCG util%", "FMG util%", "NC util%", "FMNC util%",
					"OPT ms", "INCG ms", "NC ms", "exact?"},
			}
			m := float64(d.Instance.M())
			for _, k := range ks {
				t0 := time.Now()
				opt, err := tops.Optimal(cs, tops.OptimalOptions{K: k, MaxNodes: maxNodes})
				if err != nil {
					return nil, err
				}
				optSec := time.Since(t0).Seconds()
				incg, fmg, nc, fmnc, err := h.runAll(dataset.BeijingSmall, pref, k)
				if err != nil {
					return nil, err
				}
				tbl.AddRow(fmt.Sprint(k),
					fmtPct(opt.Utility/m), fmtPct(incg.UtilityPct), fmtPct(fmg.UtilityPct),
					fmtPct(nc.UtilityPct), fmtPct(fmnc.UtilityPct),
					fmtMs(optSec), fmtMs(incg.Seconds), fmtMs(nc.Seconds),
					fmt.Sprint(opt.Exact))
			}
			tbl.AddNote("paper shape: all heuristics within a few %% of OPT; OPT orders of magnitude slower")
			return tbl, nil
		},
	})
}

// Fig. 5a: utility vs k at τ=0.8.
func init() {
	register(Experiment{
		ID:    "fig5a",
		Title: "Quality: utility % vs k (τ=0.8, Beijing)",
		Run: func(h *Harness) (*Table, error) {
			tbl := &Table{
				ID:      "fig5a",
				Title:   "Utility vs k",
				Headers: []string{"k", "INCG util%", "FMG util%", "NC util%", "FMNC util%"},
			}
			pref := tops.Binary(defaultTau)
			for _, k := range h.kGrid() {
				incg, fmg, nc, fmnc, err := h.runAll(dataset.Beijing, pref, k)
				if err != nil {
					return nil, err
				}
				tbl.AddRow(fmt.Sprint(k), fmtPct(incg.UtilityPct), fmtPct(fmg.UtilityPct),
					fmtPct(nc.UtilityPct), fmtPct(fmnc.UtilityPct))
			}
			tbl.AddNote("paper shape: NETCLUS within ~7%% of INCG on average; all curves concave increasing")
			return tbl, nil
		},
	})
}

// Fig. 5b: utility vs τ at k=5.
func init() {
	register(Experiment{
		ID:    "fig5b",
		Title: "Quality: utility % vs τ (k=5, Beijing)",
		Run: func(h *Harness) (*Table, error) {
			tbl := &Table{
				ID:      "fig5b",
				Title:   "Utility vs τ",
				Headers: []string{"tau km", "INCG util%", "FMG util%", "NC util%", "FMNC util%"},
			}
			for _, tau := range h.tauGrid() {
				pref := tops.Binary(tau)
				incg, fmg, nc, fmnc, err := h.runAll(dataset.Beijing, pref, defaultK)
				if err != nil {
					return nil, err
				}
				tbl.AddRow(fmtF(tau), fmtPct(incg.UtilityPct), fmtPct(fmg.UtilityPct),
					fmtPct(nc.UtilityPct), fmtPct(fmnc.UtilityPct))
			}
			tbl.AddNote("paper shape: utility grows with τ toward 100%%; INCG OOMs beyond τ=1.2 at paper scale")
			return tbl, nil
		},
	})
}

// Fig. 6a: running time vs k.
func init() {
	register(Experiment{
		ID:    "fig6a",
		Title: "Performance: running time vs k (τ=0.8, Beijing)",
		Run: func(h *Harness) (*Table, error) {
			tbl := &Table{
				ID:      "fig6a",
				Title:   "Running time vs k",
				Headers: []string{"k", "INCG ms", "FMG ms", "NC ms", "FMNC ms", "NC speedup"},
			}
			pref := tops.Binary(defaultTau)
			for _, k := range h.kGrid() {
				incg, fmg, nc, fmnc, err := h.runAll(dataset.Beijing, pref, k)
				if err != nil {
					return nil, err
				}
				tbl.AddRow(fmt.Sprint(k), fmtMs(incg.Seconds), fmtMs(fmg.Seconds),
					fmtMs(nc.Seconds), fmtMs(fmnc.Seconds), mustRatio(nc.Seconds, incg.Seconds))
			}
			tbl.AddNote("paper shape: NETCLUS up to ~36x faster than INCG; curves near-flat in k (covering-set cost dominates)")
			return tbl, nil
		},
	})
}

// Fig. 6b: running time vs τ.
func init() {
	register(Experiment{
		ID:    "fig6b",
		Title: "Performance: running time vs τ (k=5, Beijing)",
		Run: func(h *Harness) (*Table, error) {
			tbl := &Table{
				ID:      "fig6b",
				Title:   "Running time vs τ",
				Headers: []string{"tau km", "INCG ms", "FMG ms", "NC ms", "FMNC ms", "NC speedup"},
			}
			for _, tau := range h.tauGrid() {
				pref := tops.Binary(tau)
				incg, fmg, nc, fmnc, err := h.runAll(dataset.Beijing, pref, defaultK)
				if err != nil {
					return nil, err
				}
				tbl.AddRow(fmtF(tau), fmtMs(incg.Seconds), fmtMs(fmg.Seconds),
					fmtMs(nc.Seconds), fmtMs(fmnc.Seconds), mustRatio(nc.Seconds, incg.Seconds))
			}
			tbl.AddNote("paper shape: INCG cost grows sharply with τ (covering sets); NETCLUS flat-to-falling (coarser instances)")
			return tbl, nil
		},
	})
}

// Table 9: memory footprint vs τ.
func init() {
	register(Experiment{
		ID:    "table9",
		Title: "Memory footprint of query structures vs τ (k=5, Beijing)",
		Run: func(h *Harness) (*Table, error) {
			tbl := &Table{
				ID:      "table9",
				Title:   "Memory footprint (MB)",
				Headers: []string{"tau km", "INCG MB", "FMG MB", "NC MB", "FMNC MB"},
			}
			taus := []float64{0.1, 0.2, 0.4, 0.8, 1.2, 1.6}
			if h.cfg.Quick {
				taus = []float64{0.2, 0.8}
			}
			for _, tau := range taus {
				pref := tops.Binary(tau)
				incg, fmg, nc, fmnc, err := h.runAll(dataset.Beijing, pref, defaultK)
				if err != nil {
					return nil, err
				}
				tbl.AddRow(fmtF(tau), fmtMB(incg.MemBytes), fmtMB(fmg.MemBytes),
					fmtMB(nc.MemBytes), fmtMB(fmnc.MemBytes))
			}
			tbl.AddNote("paper shape: INCG/FMG grow sharply with τ and OOM beyond 1.2 km at paper scale; NETCLUS flat or falling")
			return tbl, nil
		},
	})
}
