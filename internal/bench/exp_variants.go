package bench

import (
	"fmt"
	"math/rand"
	"time"

	"netclus/internal/dataset"
	"netclus/internal/tops"
)

// costVector draws site costs ~ N(1, σ) floored at 0.1 (the paper's setup
// for Fig. 7a / Fig. 9).
func costVector(n int, sigma float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	costs := make([]float64, n)
	for i := range costs {
		c := 1.0 + rng.NormFloat64()*sigma
		if c < 0.1 {
			c = 0.1
		}
		costs[i] = c
	}
	return costs
}

// runCost runs TOPS-COST for both INCG and NETCLUS at one cost std-dev σ
// with budget B=5 and τ=0.8 (the paper's Fig. 7a parameters).
func (h *Harness) runCost(sigma float64) (incg, nc tops.Result, incgSec, ncSec float64, m int, err error) {
	d, err := h.Dataset(dataset.Beijing)
	if err != nil {
		return
	}
	m = d.Instance.M()
	distIdx, err := h.DistIndex(dataset.Beijing, stdDmax)
	if err != nil {
		return
	}
	pref := tops.Binary(defaultTau)
	const budget = 5.0

	t0 := time.Now()
	cs, err := tops.BuildCoverSets(distIdx, pref)
	if err != nil {
		return
	}
	costs := costVector(cs.N(), sigma, h.cfg.Seed+7)
	incg, err = tops.CostGreedy(cs, tops.CostOptions{Costs: costs, Budget: budget})
	if err != nil {
		return
	}
	incgSec = time.Since(t0).Seconds()

	idx, err := h.NetClus(dataset.Beijing, stdGamma, stdTauMin, stdTauMax)
	if err != nil {
		return
	}
	t1 := time.Now()
	p := idx.InstanceFor(pref.Tau)
	rcs, repClusters := idx.RepCover(p, pref)
	// Representatives are real sites: price them with the same cost vector
	// so both algorithms face the same economics.
	repCosts := make([]float64, len(repClusters))
	for ri := range repClusters {
		node := idx.Instances[p].Clusters[repClusters[ri]].Rep
		if sid, ok := d.Instance.SiteIDOf(node); ok {
			repCosts[ri] = costs[sid]
		} else {
			repCosts[ri] = 1
		}
	}
	nc, err = tops.CostGreedy(rcs, tops.CostOptions{Costs: repCosts, Budget: budget})
	if err != nil {
		return
	}
	ncSec = time.Since(t1).Seconds()
	// Report NETCLUS utility exactly, like the other experiments.
	exactSel := make([]tops.SiteID, 0, len(nc.Selected))
	for _, ri := range nc.Selected {
		node := idx.Instances[p].Clusters[repClusters[ri]].Rep
		if sid, ok := d.Instance.SiteIDOf(node); ok {
			exactSel = append(exactSel, sid)
		}
	}
	nc.Utility, nc.Covered = tops.EvaluateSelection(cs, exactSel)
	return
}

func (h *Harness) costSigmas() []float64 {
	if h.cfg.Quick {
		return []float64{0.2, 1.0}
	}
	return []float64{0.2, 0.4, 0.6, 0.8, 1.0}
}

// Fig. 7a: TOPS-COST utility vs cost σ.
func init() {
	register(Experiment{
		ID:    "fig7a",
		Title: "TOPS-COST: utility vs site-cost std-dev (B=5, τ=0.8)",
		Run: func(h *Harness) (*Table, error) {
			tbl := &Table{
				ID:      "fig7a",
				Title:   "Cost-constrained utility",
				Headers: []string{"sigma", "INCG util%", "NC util%"},
			}
			for _, sigma := range h.costSigmas() {
				incg, nc, _, _, m, err := h.runCost(sigma)
				if err != nil {
					return nil, err
				}
				tbl.AddRow(fmtF(sigma), fmtPct(incg.Utility/float64(m)), fmtPct(nc.Utility/float64(m)))
			}
			tbl.AddNote("paper shape: utility rises with σ (cheaper sites become available); NETCLUS tracks INCG")
			return tbl, nil
		},
	})
}

// Fig. 9: TOPS-COST site count and running time vs cost σ.
func init() {
	register(Experiment{
		ID:    "fig9",
		Title: "TOPS-COST: selected sites and running time vs cost std-dev",
		Run: func(h *Harness) (*Table, error) {
			tbl := &Table{
				ID:      "fig9",
				Title:   "Cost-constrained site count / time",
				Headers: []string{"sigma", "INCG #sites", "NC #sites", "INCG ms", "NC ms"},
			}
			for _, sigma := range h.costSigmas() {
				incg, nc, incgSec, ncSec, _, err := h.runCost(sigma)
				if err != nil {
					return nil, err
				}
				tbl.AddRow(fmtF(sigma), fmt.Sprint(len(incg.Selected)), fmt.Sprint(len(nc.Selected)),
					fmtMs(incgSec), fmtMs(ncSec))
			}
			tbl.AddNote("paper shape: #sites grows with σ; running time roughly flat (initial covering cost dominates)")
			return tbl, nil
		},
	})
}

// Fig. 7b: TOPS-CAPACITY utility vs mean capacity.
func init() {
	register(Experiment{
		ID:    "fig7b",
		Title: "TOPS-CAPACITY: utility vs mean capacity (k=5, τ=0.8)",
		Run: func(h *Harness) (*Table, error) {
			d, err := h.Dataset(dataset.Beijing)
			if err != nil {
				return nil, err
			}
			distIdx, err := h.DistIndex(dataset.Beijing, stdDmax)
			if err != nil {
				return nil, err
			}
			idx, err := h.NetClus(dataset.Beijing, stdGamma, stdTauMin, stdTauMax)
			if err != nil {
				return nil, err
			}
			pref := tops.Binary(defaultTau)
			cs, err := tops.BuildCoverSets(distIdx, pref)
			if err != nil {
				return nil, err
			}
			m := d.Instance.M()
			fracs := []float64{0.001, 0.01, 0.1, 0.5, 1.0}
			if h.cfg.Quick {
				fracs = []float64{0.01, 1.0}
			}
			tbl := &Table{
				ID:      "fig7b",
				Title:   "Capacity-constrained utility",
				Headers: []string{"mean cap % of m", "INCG util%", "NC util%"},
			}
			for _, frac := range fracs {
				caps := capVector(cs.N(), frac, m, h.cfg.Seed+9)
				incg, err := tops.CapacityGreedy(cs, tops.CapacityOptions{K: defaultK, Caps: caps})
				if err != nil {
					return nil, err
				}
				p := idx.InstanceFor(pref.Tau)
				rcs, repClusters := idx.RepCover(p, pref)
				repCaps := make([]int, len(repClusters))
				for ri := range repClusters {
					node := idx.Instances[p].Clusters[repClusters[ri]].Rep
					if sid, ok := d.Instance.SiteIDOf(node); ok {
						repCaps[ri] = caps[sid]
					}
				}
				nc, err := tops.CapacityGreedy(rcs, tops.CapacityOptions{K: defaultK, Caps: repCaps})
				if err != nil {
					return nil, err
				}
				// Re-measure NETCLUS exactly: run a capacity-respecting
				// assignment of the selected real sites against the exact
				// cover sets, like the other experiments report exact
				// utility rather than the d̂r under-estimate.
				exactSel := make([]tops.SiteID, 0, len(nc.Selected))
				exactCaps := make([]int, 0, len(nc.Selected))
				for _, ri := range nc.Selected {
					node := idx.Instances[p].Clusters[repClusters[ri]].Rep
					if sid, ok := d.Instance.SiteIDOf(node); ok {
						exactSel = append(exactSel, sid)
						exactCaps = append(exactCaps, caps[sid])
					}
				}
				ncExact, err := evaluateCapacitySelection(cs, exactSel, exactCaps)
				if err != nil {
					return nil, err
				}
				tbl.AddRow(fmtPct(frac), fmtPct(incg.Utility/float64(m)), fmtPct(ncExact/float64(m)))
			}
			tbl.AddNote("paper shape: utility grows with mean capacity and saturates at the unconstrained TOPS value")
			return tbl, nil
		},
	})
}

// evaluateCapacitySelection measures the utility a fixed site selection
// achieves under capacities, by running the capacity-respecting assignment
// over the exact cover sets restricted to those sites.
func evaluateCapacitySelection(cs *tops.CoverSets, sel []tops.SiteID, caps []int) (float64, error) {
	if len(sel) == 0 {
		return 0, nil
	}
	sub := tops.NewCoverSets(len(sel), cs.M)
	for i, s := range sel {
		trajs, scores := cs.TC(int32(s))
		for j, tr := range trajs {
			sub.AddPair(int32(i), tr, scores[j])
		}
	}
	res, err := tops.CapacityGreedy(sub, tops.CapacityOptions{K: len(sel), Caps: caps})
	if err != nil {
		return 0, err
	}
	return res.Utility, nil
}

// capVector draws capacities ~ N(frac·m, 0.1·frac·m), floored at 1.
func capVector(n int, frac float64, m int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	mean := frac * float64(m)
	caps := make([]int, n)
	for i := range caps {
		c := int(mean + rng.NormFloat64()*0.1*mean)
		if c < 1 {
			c = 1
		}
		caps[i] = c
	}
	return caps
}

// Fig. 8: TOPS2 (convex preference) utility and time.
func init() {
	register(Experiment{
		ID:    "fig8",
		Title: "TOPS2 (convex ψ): utility and time for k∈{5,10,20}, τ∈{0.4,0.8}",
		Run: func(h *Harness) (*Table, error) {
			tbl := &Table{
				ID:      "fig8",
				Title:   "TOPS2 variant",
				Headers: []string{"tau km", "k", "INCG util%", "NC util%", "INCG ms", "NC ms"},
			}
			taus := []float64{0.4, 0.8}
			ks := []int{5, 10, 20}
			if h.cfg.Quick {
				ks = []int{5}
			}
			for _, tau := range taus {
				for _, k := range ks {
					pref := tops.ConvexQuadratic(tau)
					incg, err := h.runINCG(dataset.Beijing, pref, k, false)
					if err != nil {
						return nil, err
					}
					nc, err := h.runNetClus(dataset.Beijing, pref, k, false)
					if err != nil {
						return nil, err
					}
					tbl.AddRow(fmtF(tau), fmt.Sprint(k), fmtPct(incg.UtilityPct), fmtPct(nc.UtilityPct),
						fmtMs(incg.Seconds), fmtMs(nc.Seconds))
				}
			}
			tbl.AddNote("paper shape: NETCLUS close to INCG in utility while ~an order of magnitude faster")
			return tbl, nil
		},
	})
}
