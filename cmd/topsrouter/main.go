// Command topsrouter fronts a shard-per-process NETCLUS topology: each
// shard is its own topsserve process started with -shard-index, and the
// router scatter-gathers the distributed-greedy round protocol across
// them over HTTP, so /v1/query answers are bit-exact against a
// single-process engine over the same dataset.
//
// The router is stateless (no index, no WAL): it holds only the shard
// map, a dense site-id mirror, and cached cluster-ownership tables it can
// rebuild from the members at any time — kill it and restart it freely.
//
// -shard lists one shard's member URLs, primary first, followers after;
// repeat the flag once per shard, in shard order:
//
//	topsserve -preset beijing-small -shards 2 -shard-index 0 -addr :8081 &
//	topsserve -preset beijing-small -shards 2 -shard-index 1 -addr :8082 &
//	topsrouter -addr :8080 -shard http://localhost:8081 -shard http://localhost:8082
//
// With per-shard replication, list the followers too; a member failure
// mid-query fails over to the next URL (the round protocol is read-only,
// so an un-promoted follower can serve it):
//
//	topsrouter -addr :8080 \
//	  -shard http://localhost:8081,http://localhost:9081 \
//	  -shard http://localhost:8082,http://localhost:9082
//
// Query and mutate it exactly like a topsserve primary:
//
//	curl -s -X POST localhost:8080/v1/query -d '{"k":5,"tau":0.8}'
//	curl -s -X POST localhost:8080/v1/update -d '{"op":"delete_site","node":17}'
//	curl -s localhost:8080/v1/topology
//
// After a shard primary dies and its follower is promoted
// (POST /v1/promote on the follower), re-point the router:
//
//	curl -s -X POST localhost:8080/v1/topology \
//	  -d '{"shard":1,"primary":"http://localhost:9082"}'
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"netclus"
)

// shardList collects repeated -shard flags, each a comma-separated member
// URL list (primary first).
type shardList [][]string

func (s *shardList) String() string {
	parts := make([]string, len(*s))
	for i, urls := range *s {
		parts[i] = strings.Join(urls, ",")
	}
	return strings.Join(parts, " ")
}

func (s *shardList) Set(v string) error {
	var urls []string
	for _, u := range strings.Split(v, ",") {
		u = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(u), "/"))
		if u == "" {
			continue
		}
		urls = append(urls, u)
	}
	if len(urls) == 0 {
		return fmt.Errorf("-shard needs at least one member URL")
	}
	*s = append(*s, urls)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func main() {
	var shards shardList
	var (
		addr          string
		shardTimeout  time.Duration
		queryAttempts int
		drainTimeout  time.Duration
		pprofAddr     string
		logLevel      string
		logFormat     string
		slowQuery     time.Duration
	)
	flag.StringVar(&addr, "addr", ":8080", "listen address")
	flag.Var(&shards, "shard", "one shard's member URLs, comma-separated, primary first; repeat per shard in shard order")
	flag.DurationVar(&shardTimeout, "shard-timeout", 10*time.Second, "per-member call timeout")
	flag.IntVar(&queryAttempts, "query-attempts", 3, "how many times a query restarts after a member failure before answering 503")
	flag.DurationVar(&drainTimeout, "drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight requests")
	flag.StringVar(&pprofAddr, "pprof", "", "serve net/http/pprof profiling endpoints on this address (e.g. localhost:6061); empty disables")
	flag.StringVar(&logLevel, "log-level", "info", "structured log level: debug, info, warn, or error")
	flag.StringVar(&logFormat, "log-format", "text", "structured log encoding: text or json")
	flag.DurationVar(&slowQuery, "slow-query", 0, "log a structured record for routed queries slower than this (e.g. 250ms); 0 disables")
	flag.Parse()

	if len(shards) == 0 {
		fatal(fmt.Errorf("at least one -shard is required (topsserve processes started with -shard-index)"))
	}
	lvl, err := netclus.ParseLogLevel(logLevel)
	if err != nil {
		fatal(err)
	}
	logger, err := netclus.NewLogger(os.Stderr, lvl, logFormat)
	if err != nil {
		fatal(err)
	}
	t0 := time.Now()
	r, err := netclus.NewRouter(netclus.RouterOptions{
		Shards:        shards,
		ShardTimeout:  shardTimeout,
		QueryAttempts: queryAttempts,
		Logger:        logger,
		SlowQuery:     slowQuery,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("routing %d shards on %s (validated topology in %.3fs)\n", r.Shards(), addr, time.Since(t0).Seconds())
	if pprofAddr != "" {
		go servePprof(pprofAddr)
	}

	httpSrv := &http.Server{Addr: addr, Handler: r}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		fmt.Printf("\n%s: draining (up to %v)…\n", sig, drainTimeout)
	}
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "drain incomplete: %v\n", err)
	}
	fmt.Println("drained; bye")
}

// servePprof exposes the runtime profiling endpoints on their own listener,
// mirroring topsserve: the debug surface never shares the query API's
// address (which may be public).
//
//	go tool pprof http://localhost:6061/debug/pprof/profile?seconds=10
//	curl -s localhost:6061/debug/pprof/heap -o heap.pb.gz
func servePprof(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	fmt.Printf("pprof on %s\n", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		fmt.Fprintf(os.Stderr, "pprof server: %v\n", err)
	}
}
