package main

// Cross-process differential oracle for the router tier: real topsserve
// shard-member children behind a real topsrouter child must answer
// queries bit-identically to an in-process sharded twin across an update
// stream — including after one shard's primary is SIGKILLed, its tailing
// follower is promoted, and the router is re-pointed at it. This is the
// process-level closure of the in-process differential in
// internal/router.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"netclus"
	"netclus/internal/dataset"
)

const (
	tPreset = "beijing-small"
	tScale  = 0.2
	tSeed   = 7
	tShards = 2
)

func buildBinary(t *testing.T, pkgDir, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, pkgDir)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

type child struct {
	cmd  *exec.Cmd
	addr string
	logf *os.File
}

func startChild(t *testing.T, bin string, args ...string) *child {
	t.Helper()
	addr := freePort(t)
	logf, err := os.CreateTemp(t.TempDir(), "child-*.log")
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, append([]string{"-addr", addr}, args...)...)
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	c := &child{cmd: cmd, addr: addr, logf: logf}
	t.Cleanup(func() {
		if c.cmd.Process != nil {
			c.cmd.Process.Kill()
			c.cmd.Wait()
		}
		if t.Failed() {
			logf.Seek(0, 0)
			out, _ := io.ReadAll(logf)
			t.Logf("child %s log:\n%s", addr, out)
		}
	})
	return c
}

// startMember boots one topsserve shard member of the test topology.
func startMember(t *testing.T, bin string, index int, extra ...string) *child {
	t.Helper()
	return startChild(t, bin, append([]string{
		"-preset", tPreset, "-scale", fmt.Sprint(tScale), "-seed", fmt.Sprint(tSeed),
		"-batch-window", "0", "-shards", fmt.Sprint(tShards), "-shard-index", fmt.Sprint(index),
	}, extra...)...)
}

func (c *child) url() string { return "http://" + c.addr }

func (c *child) waitHealthy(t *testing.T, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(c.url() + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("child %s never became healthy", c.addr)
}

func (c *child) kill(t *testing.T) {
	t.Helper()
	if err := c.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	c.cmd.Wait()
}

func (c *child) statszLSN(t *testing.T) uint64 {
	t.Helper()
	resp, err := http.Get(c.url() + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Engine struct {
			LSN uint64 `json:"lsn"`
		} `json:"engine"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body.Engine.LSN
}

func post(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	resp, err := http.Post(url, "application/json", rd)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw
}

// update is one scripted /v1/update call also applicable to the twin.
type update struct {
	op    string
	node  int64
	nodes []int64
	id    int64
}

func (u update) wire() string {
	switch u.op {
	case "add_site", "delete_site":
		return fmt.Sprintf(`{"op":%q,"node":%d}`, u.op, u.node)
	case "add_trajectory":
		raw, _ := json.Marshal(u.nodes)
		return fmt.Sprintf(`{"op":"add_trajectory","nodes":%s}`, raw)
	default:
		return fmt.Sprintf(`{"op":"delete_trajectory","id":%d}`, u.id)
	}
}

func (u update) applyTwin(t *testing.T, eng netclus.DurableEngine) {
	t.Helper()
	var err error
	switch u.op {
	case "add_site":
		err = eng.AddSite(netclus.NodeID(u.node))
	case "delete_site":
		err = eng.DeleteSite(netclus.NodeID(u.node))
	case "add_trajectory":
		nodes := make([]netclus.NodeID, len(u.nodes))
		for i, v := range u.nodes {
			nodes[i] = netclus.NodeID(v)
		}
		tr, terr := netclus.NewTrajectory(eng.Graph(), nodes)
		if terr != nil {
			t.Fatal(terr)
		}
		_, err = eng.AddTrajectory(tr)
	default:
		err = eng.DeleteTrajectory(netclus.TrajectoryID(u.id))
	}
	if err != nil {
		t.Fatalf("twin %s: %v", u.op, err)
	}
}

// script builds a deterministic update sequence valid when applied in
// order from the pristine preset (same shape as the topsserve oracle's).
func script(t *testing.T, inst *netclus.Instance, n int) []update {
	t.Helper()
	isSite := make(map[netclus.NodeID]bool, len(inst.Sites))
	for _, s := range inst.Sites {
		isSite[s] = true
	}
	var free []int64
	for v := 0; v < inst.G.NumNodes() && len(free) < n; v++ {
		if !isSite[netclus.NodeID(v)] {
			free = append(free, int64(v))
		}
	}
	var ups []update
	tr0 := inst.Trajs.Get(0)
	for i := 0; len(ups) < n; i++ {
		switch {
		case i == 3:
			ups = append(ups, update{op: "delete_site", node: int64(inst.Sites[0])})
		case i == 5:
			var nodes []int64
			for _, v := range tr0.Nodes {
				nodes = append(nodes, int64(v))
			}
			ups = append(ups, update{op: "add_trajectory", nodes: nodes})
		case i == 8:
			ups = append(ups, update{op: "delete_trajectory", id: 1})
		default:
			ups = append(ups, update{op: "add_site", node: free[0]})
			free = free[1:]
		}
	}
	return ups
}

// queryBoth asserts the router and the in-process sharded twin answer a
// query identically, bit for bit.
func queryBoth(t *testing.T, url string, twin netclus.DurableEngine, k int, tau float64) {
	t.Helper()
	status, raw := post(t, url+"/v1/query", fmt.Sprintf(`{"k":%d,"tau":%g}`, k, tau))
	if status != http.StatusOK {
		t.Fatalf("query k=%d tau=%g: %d %s", k, tau, status, raw)
	}
	var got struct {
		Sites            []int64 `json:"sites"`
		SiteIDs          []int32 `json:"site_ids"`
		EstimatedUtility float64 `json:"estimated_utility"`
		EstimatedCovered int     `json:"estimated_covered"`
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	want, err := twin.Query(context.Background(), netclus.QueryOptions{K: k, Pref: netclus.Binary(tau)})
	if err != nil {
		t.Fatal(err)
	}
	if got.EstimatedUtility != want.EstimatedUtility || got.EstimatedCovered != want.EstimatedCovered ||
		len(got.Sites) != len(want.Sites) {
		t.Fatalf("k=%d tau=%g: router {u=%v c=%d n=%d} twin {u=%v c=%d n=%d}",
			k, tau, got.EstimatedUtility, got.EstimatedCovered, len(got.Sites),
			want.EstimatedUtility, want.EstimatedCovered, len(want.Sites))
	}
	for i := range got.Sites {
		if got.Sites[i] != int64(want.Sites[i]) || got.SiteIDs[i] != int32(want.SiteIDs[i]) {
			t.Fatalf("k=%d tau=%g site %d: router (%d,%d) twin (%d,%d)",
				k, tau, i, got.Sites[i], got.SiteIDs[i], want.Sites[i], want.SiteIDs[i])
		}
	}
}

func TestRouterCrossProcessOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real topsserve/topsrouter processes; skipped under -short")
	}
	serveBin := buildBinary(t, "../topsserve", "topsserve")
	routeBin := buildBinary(t, ".", "topsrouter")

	// The in-process twin: the same dataset under the same 2-shard hash
	// topology, never interrupted.
	d, err := netclus.LoadDataset(dataset.Preset(tPreset), netclus.DatasetConfig{Scale: tScale, Seed: tSeed})
	if err != nil {
		t.Fatal(err)
	}
	twin, err := netclus.NewShardedEngine(d.Instance, netclus.ShardedOptions{Shards: tShards})
	if err != nil {
		t.Fatal(err)
	}
	ups := script(t, d.Instance, 14)

	// Shard 0 runs durable (its follower tails the WAL); shard 1 is a
	// plain member.
	walA := filepath.Join(t.TempDir(), "wal-a")
	m0 := startMember(t, serveBin, 0, "-wal-dir", walA, "-fsync", "always")
	m1 := startMember(t, serveBin, 1)
	m0.waitHealthy(t, 5*time.Minute)
	m1.waitHealthy(t, 5*time.Minute)

	// Shard 0's follower: an independent member-mode replica tailing m0.
	f0 := startMember(t, serveBin, 0, "-follow", m0.url(), "-follow-poll", "100ms", "-follow-wait", "2s")
	f0.waitHealthy(t, 5*time.Minute)

	// The router fronts both shards; shard 0 lists its follower as the
	// read-failover target.
	router := startChild(t, routeBin,
		"-shard", m0.url()+","+f0.url(),
		"-shard", m1.url())
	router.waitHealthy(t, time.Minute)

	// Phase 1: updates through the router, mirrored on the twin; answers
	// must stay bit-exact.
	phase1 := ups[:10]
	for i, u := range phase1 {
		status, raw := post(t, router.url()+"/v1/update", u.wire())
		if status != http.StatusOK {
			t.Fatalf("update %d (%s): %d %s", i, u.op, status, raw)
		}
		u.applyTwin(t, twin)
	}
	for _, q := range []struct {
		k   int
		tau float64
	}{{3, 0.8}, {5, 1.6}, {8, 2.8}} {
		queryBoth(t, router.url(), twin, q.k, q.tau)
	}

	// Phase 2: SIGKILL shard 0's primary. The follower must first drain
	// the full stream (its LSN matches the primary's), then reads keep
	// flowing through the router via automatic failover to the follower —
	// the round protocol is read-only, so no promotion is needed yet.
	target := m0.statszLSN(t)
	deadline := time.Now().Add(60 * time.Second)
	for f0.statszLSN(t) != target {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at LSN %d, shard-0 primary at %d", f0.statszLSN(t), target)
		}
		time.Sleep(100 * time.Millisecond)
	}
	m0.kill(t)
	queryBoth(t, router.url(), twin, 4, 1.1)

	// Phase 3: promote the follower, re-point the router, and keep
	// writing; answers stay bit-exact against the uninterrupted twin.
	status, raw := post(t, f0.url()+"/v1/promote", "")
	if status != http.StatusOK {
		t.Fatalf("promote: %d %s", status, raw)
	}
	status, raw = post(t, router.url()+"/v1/topology", fmt.Sprintf(`{"shard":0,"primary":%q}`, f0.url()))
	if status != http.StatusOK {
		t.Fatalf("re-point: %d %s", status, raw)
	}
	for i, u := range ups[10:] {
		status, raw := post(t, router.url()+"/v1/update", u.wire())
		if status != http.StatusOK {
			t.Fatalf("post-promote update %d (%s): %d %s", i, u.op, status, raw)
		}
		u.applyTwin(t, twin)
	}
	for _, q := range []struct {
		k   int
		tau float64
	}{{3, 0.8}, {6, 2.2}, {9, 3.4}} {
		queryBoth(t, router.url(), twin, q.k, q.tau)
	}

	// The router's own surfaces reflect the drill.
	resp, err := http.Get(router.url() + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Failovers uint64 `json:"failovers"`
		Updates   uint64 `json:"updates"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Failovers == 0 {
		t.Fatal("router reported no failovers after shard 0's primary was SIGKILLed")
	}
	if stats.Updates < uint64(len(ups)) {
		t.Fatalf("router counted %d updates, want >= %d", stats.Updates, len(ups))
	}
}
