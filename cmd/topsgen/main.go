// Command topsgen generates synthetic datasets and writes them to disk in
// the library's binary formats (a .graph road network and a .trajs
// trajectory store), so repeated experiments skip generation.
//
// Usage:
//
//	topsgen -preset beijing -scale 0.05 -out data/beijing
//	topsgen -preset atlanta -seed 7 -out /tmp/atl -gps
//
// With -gps the tool additionally exercises the full offline pipeline of
// the paper's Fig. 2: it emits noisy GPS traces from the generated
// trajectories, map-matches them back onto the network, and reports the
// recovery quality.
//
// With -ndjson it writes noisy GPS traces in the POST /v1/ingest wire
// format (one {"id", "points": [{"x","y","t"}...]} object per line), so a
// feed for a live topsserve can be generated from the same preset the
// server booted with:
//
//	topsgen -preset beijing-small -scale 0.2 -ndjson feed.ndjson
//	curl --data-binary @feed.ndjson 127.0.0.1:8080/v1/ingest
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"netclus/internal/dataset"
	"netclus/internal/gen"
	"netclus/internal/mapmatch"
	"netclus/internal/trajectory"
)

func main() {
	var (
		preset = flag.String("preset", "beijing", "dataset preset (beijing-small, beijing, bangalore, newyork, atlanta)")
		scale  = flag.Float64("scale", 0.04, "fraction of the paper's dataset size")
		seed   = flag.Int64("seed", 42, "generation seed")
		out    = flag.String("out", "", "output path prefix (writes <out>.graph and <out>.trajs)")
		gps    = flag.Bool("gps", false, "also run the GPS-emission + map-matching pipeline and report recovery quality")

		ndjson      = flag.String("ndjson", "", "write noisy GPS traces in the /v1/ingest NDJSON wire format to this path")
		ndjsonCount = flag.Int("ndjson-count", 25, "number of traces to emit with -ndjson")
	)
	flag.Parse()

	d, err := dataset.Load(dataset.Preset(*preset), dataset.Config{Scale: *scale, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(d.Summary())
	stats := d.Instance.Trajs.ComputeStats()
	fmt.Printf("trajectories: mean %.1f nodes, mean %.2f km, max %.2f km\n",
		stats.MeanNodes, stats.MeanLength, stats.MaxLength)

	if *out != "" {
		gf, err := os.Create(*out + ".graph")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if _, err := d.Instance.G.WriteTo(gf); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		gf.Close()
		tf, err := os.Create(*out + ".trajs")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if _, err := d.Instance.Trajs.WriteTo(tf); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tf.Close()
		fmt.Printf("wrote %s.graph and %s.trajs\n", *out, *out)
	}

	if *ndjson != "" {
		n := *ndjsonCount
		if m := d.Instance.M(); n > m {
			n = m
		}
		f, err := os.Create(*ndjson)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		w := bufio.NewWriter(f)
		for i := 0; i < n; i++ {
			orig := d.Instance.Trajs.Get(trajectory.ID(i))
			trace := gen.EmitGPS(d.Instance.G, orig, gen.GPSConfig{Seed: *seed + int64(i)})
			fmt.Fprintf(w, `{"id":"t%d","points":[`, i)
			for j, p := range trace.Points {
				if j > 0 {
					w.WriteByte(',')
				}
				fmt.Fprintf(w, `{"x":%g,"y":%g,"t":%g}`, p.Pos.X, p.Pos.Y, p.Time)
			}
			fmt.Fprintln(w, "]}")
		}
		if err := w.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d NDJSON GPS traces to %s\n", n, *ndjson)
	}

	if *gps {
		fmt.Println("running GPS emission + map-matching pipeline (Fig. 2 offline phase)…")
		matcher := mapmatch.NewMatcher(d.Instance.G, mapmatch.Config{})
		n := d.Instance.M()
		if n > 200 {
			n = 200
		}
		ok, failed := 0, 0
		var ratioSum float64
		for i := 0; i < n; i++ {
			orig := d.Instance.Trajs.Get(trajectory.ID(i))
			trace := gen.EmitGPS(d.Instance.G, orig, gen.GPSConfig{Seed: *seed + int64(i)})
			matched, err := matcher.Match(trace)
			if err != nil {
				failed++
				continue
			}
			ok++
			ratioSum += matched.Length() / orig.Length()
		}
		fmt.Printf("map-matched %d/%d traces (%d failures); mean length ratio %.3f\n",
			ok, n, failed, ratioSum/float64(ok))
	}
}
