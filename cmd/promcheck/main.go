// Command promcheck validates a Prometheus text-format exposition read
// from stdin against the same strict grammar checker the /metrics golden
// tests use, so CI can assert a live scrape parses:
//
//	curl -s localhost:8080/metrics | go run ./cmd/promcheck
//
// Exit status 0 means the exposition parses; anything else prints the
// first grammar violation and exits 1.
package main

import (
	"fmt"
	"io"
	"os"

	"netclus/internal/obs"
)

func main() {
	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := obs.ValidateExposition(string(data)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("ok: %d bytes of valid exposition\n", len(data))
}
