// Command topsserve serves TOPS queries over HTTP: it materializes a
// dataset preset, warm-starts the NETCLUS index from a snapshot when one is
// available (the PR-2 lifecycle: -cache / -load), wraps it in the
// concurrent engine, and exposes the internal/server JSON API with
// micro-batched admission and graceful drain.
//
// Usage:
//
//	topsserve -preset beijing -scale 0.02 -cache .ncache
//	topsserve -preset beijing -scale 0.02 -load bj.ncss -addr :8080
//	topsserve -preset beijing -scale 0.02 -shards 4 -cache .ncache
//	topsserve -preset atlanta -batch-window 1ms -batch-max 128
//
// Query it:
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/query -d '{"k":5,"tau":0.8}'
//	curl -s -X POST localhost:8080/v1/update -d '{"op":"delete_site","node":17}'
//	curl -s -X POST localhost:8080/v1/snapshot -o index.ncss
//	curl -s localhost:8080/statsz
//
// SIGTERM/SIGINT starts a graceful drain: /healthz flips to 503 so load
// balancers stop routing here, in-flight requests finish (bounded by
// -drain-timeout), the micro-batcher delivers its last flush, and an
// optional -snapshot-on-exit checkpoint is written before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"netclus"
	"netclus/internal/dataset"
)

// fileExists reports whether path exists (used only to decide whether a
// failed warm load deserves a diagnostic).
func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// shardedCacheDir derives the snapshot-cache location for a sharded build:
// sharded manifests live next to the single-index cache entries, keyed by
// everything that changes the partition.
func shardedCacheDir(cacheDir, preset string, scale float64, seed int64, shards int, partitioner string) string {
	return filepath.Join(cacheDir, fmt.Sprintf("sharded-%s-s%g-seed%d-%dx-%s", preset, scale, seed, shards, partitioner))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		preset       = flag.String("preset", "beijing", "dataset preset to serve")
		scale        = flag.Float64("scale", 0.02, "dataset scale")
		seed         = flag.Int64("seed", 42, "generation seed")
		loadPath     = flag.String("load", "", "warm-start from this snapshot file (dataset must match)")
		cacheDir     = flag.String("cache", "", "snapshot-cache directory (warm-starts repeat boots, caches cold builds)")
		workers      = flag.Int("workers", 0, "index build parallelism for cold builds (0 = all cores)")
		noCoverCache = flag.Bool("no-cover-cache", false, "disable the engine's cover memoization (paper's per-query behaviour)")
		batchWindow  = flag.Duration("batch-window", 2*time.Millisecond, "micro-batch coalescing window; 0 disables batching")
		batchMax     = flag.Int("batch-max", 64, "micro-batch flush size")
		timeout      = flag.Duration("timeout", 10*time.Second, "default per-request deadline")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight requests")
		exitSnapshot = flag.String("snapshot-on-exit", "", "write a final index checkpoint here after draining")
		shards       = flag.Int("shards", 1, "number of engine shards; queries scatter-gather across them and site updates invalidate only the owning shard")
		partitioner  = flag.String("partitioner", netclus.ShardByHash, "site partitioner for -shards > 1: hash or grid")
	)
	flag.Parse()
	if *cacheDir != "" && *loadPath != "" {
		fatal(fmt.Errorf("-cache and -load are mutually exclusive: the cache decides which snapshot to read"))
	}
	nShards, shardWarn, err := netclus.ValidateShardCount(*shards)
	if err != nil {
		fatal(err)
	}
	if shardWarn != "" {
		fmt.Fprintln(os.Stderr, shardWarn)
	}
	if nShards > 1 && *loadPath != "" {
		fatal(fmt.Errorf("-load reads a single-index snapshot; with -shards > 1 use -cache, which stores a sharded manifest"))
	}

	// Materialize the dataset and its serving engine, warm when possible.
	t0 := time.Now()
	var inst *netclus.Instance
	var serveEng netclus.ServerEngine
	if nShards > 1 {
		d, err := netclus.LoadDataset(dataset.Preset(*preset), netclus.DatasetConfig{Scale: *scale, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		inst = d.Instance
		fmt.Println(d.Summary())
		sopts := netclus.ShardedOptions{
			Shards:      nShards,
			Partitioner: *partitioner,
			Build:       netclus.BuildOptions{Workers: *workers},
			Engine:      netclus.EngineOptions{DisableCoverCache: *noCoverCache},
		}
		var sh *netclus.ShardedEngine
		dir := ""
		if *cacheDir != "" {
			dir = shardedCacheDir(*cacheDir, *preset, *scale, *seed, nShards, *partitioner)
			warm, err := netclus.LoadShardedDir(dir, inst, sopts)
			switch {
			case err == nil:
				sh = warm
				fmt.Printf("sharded warm load (%d shards) from %s in %.3fs\n", nShards, dir, time.Since(t0).Seconds())
			case fileExists(filepath.Join(dir, netclus.ShardedManifestName)):
				// A manifest exists but would not load (corrupt file,
				// dataset/generator drift): say why before the expensive
				// cold rebuild overwrites the evidence.
				fmt.Fprintf(os.Stderr, "sharded cache at %s unusable (%v); rebuilding cold\n", dir, err)
			}
		}
		if sh == nil {
			var err error
			sh, err = netclus.NewShardedEngine(inst, sopts)
			if err != nil {
				fatal(err)
			}
			how := "sharded cold build"
			if dir != "" {
				// Best-effort cache population, mirroring LoadIndexedDataset:
				// an unwritable cache never fails the boot.
				if err := netclus.SaveShardedDir(sh, dir); err != nil {
					fmt.Fprintf(os.Stderr, "sharded snapshot cache not written: %v\n", err)
				} else {
					how += " + cache"
				}
			}
			fmt.Printf("%s (%d shards, partitioner %s) in %.1fs\n", how, nShards, *partitioner, time.Since(t0).Seconds())
		}
		serveEng = sh
		startServer(serveEng, inst, addr, batchWindow, batchMax, timeout, drainTimeout, exitSnapshot)
		return
	}
	var idx *netclus.Index
	switch {
	case *cacheDir != "":
		di, err := netclus.LoadIndexedDataset(dataset.Preset(*preset),
			netclus.DatasetConfig{Scale: *scale, Seed: *seed, CacheDir: *cacheDir},
			netclus.BuildOptions{Workers: *workers})
		if err != nil {
			fatal(err)
		}
		inst, idx = di.Instance, di.Index
		how := "cold build + cache"
		if di.WarmLoaded {
			how = "warm load"
		}
		fmt.Printf("%s\nindex via %s (%s) in %.3fs\n", di.Summary(), how, di.SnapshotPath, time.Since(t0).Seconds())
	default:
		d, err := netclus.LoadDataset(dataset.Preset(*preset), netclus.DatasetConfig{Scale: *scale, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		inst = d.Instance
		fmt.Println(d.Summary())
		if *loadPath != "" {
			idx, err = netclus.LoadFile(*loadPath, inst)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("warm-started from %s in %.3fs\n", *loadPath, time.Since(t0).Seconds())
		} else {
			idx, err = netclus.Build(inst, netclus.BuildOptions{Workers: *workers})
			if err != nil {
				fatal(err)
			}
			fmt.Printf("cold build in %.1fs (%d instances, %.1f MB)\n",
				time.Since(t0).Seconds(), len(idx.Instances), float64(idx.MemoryBytes())/(1<<20))
		}
	}

	eng, err := netclus.NewEngine(idx, netclus.EngineOptions{DisableCoverCache: *noCoverCache})
	if err != nil {
		fatal(err)
	}
	startServer(eng, inst, addr, batchWindow, batchMax, timeout, drainTimeout, exitSnapshot)
}

// startServer mounts the HTTP layer over any serving engine (single-index
// or sharded), runs until SIGTERM/SIGINT, drains, and optionally writes a
// final checkpoint.
func startServer(eng netclus.ServerEngine, inst *netclus.Instance, addr *string, batchWindow *time.Duration, batchMax *int, timeout, drainTimeout *time.Duration, exitSnapshot *string) {
	window := *batchWindow
	if window == 0 {
		window = -1 // server convention: negative disables batching
	}
	srv, err := netclus.NewServer(eng, netclus.ServeOptions{
		BatchWindow:    window,
		BatchMaxSize:   *batchMax,
		DefaultTimeout: *timeout,
	})
	if err != nil {
		fatal(err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	errc := make(chan error, 1)
	go func() {
		fmt.Printf("serving %d trajectories / %d sites on %s (batch window %v, max %d)\n",
			inst.M(), inst.N(), *addr, *batchWindow, *batchMax)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		fmt.Printf("\n%s: draining (up to %v)…\n", sig, *drainTimeout)
	}

	// Drain: stop advertising health, let in-flight requests finish, then
	// stop the batcher (its last flush delivers before Close returns).
	srv.SetDraining(true)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "drain incomplete: %v\n", err)
	}
	srv.Close()

	if *exitSnapshot != "" {
		if err := writeSnapshot(eng, *exitSnapshot); err != nil {
			fatal(fmt.Errorf("final snapshot: %w", err))
		}
		fmt.Printf("final snapshot written to %s\n", *exitSnapshot)
	}
	fmt.Println("drained; bye")
}

// writeSnapshot checkpoints the engine's index atomically (temp file +
// rename in the target directory). A sharded engine writes its container
// format (manifest + per-shard streams); reload it with
// netclus.LoadShardedSnapshot against the same full dataset.
func writeSnapshot(eng netclus.ServerEngine, path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".topsserve-snap-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func() {
		f.Close()
		os.Remove(tmp)
	}
	if _, err := eng.Snapshot(f); err != nil {
		cleanup()
		return err
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
