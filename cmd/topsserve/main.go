// Command topsserve serves TOPS queries over HTTP: it materializes a
// dataset preset, warm-starts the NETCLUS index from a snapshot or
// checkpoint when one is available, wraps it in the concurrent engine
// (single-index or sharded), and exposes the internal/server JSON API with
// micro-batched admission and graceful drain.
//
// Durability (-wal-dir): every acknowledged /v1/update is appended to a
// write-ahead log before the response leaves; -fsync picks the durability
// window (always / interval / none) and -checkpoint-every writes periodic
// recovery checkpoints that also advance log compaction. A killed server
// restarted with the same -wal-dir recovers to exactly the acknowledged
// state: checkpoint + log-tail replay.
//
// Replication (-follow): a read-replica tails the primary's /v1/log —
// long-polling by default (-follow-wait), falling back to -follow-poll —
// applies records through the recovery replay path, rejects writes with
// 403, and reports its lag in /healthz and /statsz. With -wal-dir it also
// persists the stream locally (and can itself be tailed). POST /v1/promote
// turns a replica into the primary: tailing stops, the local tail replays,
// and a new epoch (fencing token) opens so the deposed primary's writes
// are rejected with 409 fenced. With -quorum N a primary only acknowledges
// an update once N followers have durably persisted it (semi-synchronous
// replication); GET /v1/replication reports the whole topology. See API.md
// for the complete HTTP surface.
//
// Usage:
//
//	topsserve -preset beijing -scale 0.02 -cache .ncache
//	topsserve -preset beijing -scale 0.02 -wal-dir ./wal -fsync always
//	topsserve -preset beijing -scale 0.02 -wal-dir ./wal -checkpoint-every 5m
//	topsserve -preset beijing -scale 0.02 -shards 4 -wal-dir ./wal
//	topsserve -preset beijing -scale 0.02 -follow http://primary:8080 -addr :8081
//	topsserve -preset beijing -scale 0.02 -wal-dir ./wal -quorum 1
//
// Query it:
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/query -d '{"k":5,"tau":0.8}'
//	curl -s -X POST localhost:8080/v1/update -d '{"op":"delete_site","node":17}'
//	curl -s -X POST localhost:8080/v1/snapshot -o index.ncss
//	curl -s -X POST localhost:8080/v1/checkpoint -o backup.ncck
//	curl -s 'localhost:8080/v1/log?from=1' -o records.bin
//	curl -s localhost:8080/statsz
//
// SIGTERM/SIGINT starts a graceful drain: /healthz flips to 503 so load
// balancers stop routing here, in-flight requests finish (bounded by
// -drain-timeout), the micro-batcher delivers its last flush, and optional
// -snapshot-on-exit / final checkpoints are written before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"netclus"
	"netclus/internal/dataset"
	"netclus/internal/wal"
)

// checkpointName is the recovery bundle inside -wal-dir.
const checkpointName = "checkpoint.ncck"

// fileExists reports whether path exists (used only to decide whether a
// failed warm load deserves a diagnostic).
func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// shardedCacheDir derives the snapshot-cache location for a sharded build:
// sharded manifests live next to the single-index cache entries, keyed by
// everything that changes the partition.
func shardedCacheDir(cacheDir, preset string, scale float64, seed int64, shards int, partitioner string) string {
	return filepath.Join(cacheDir, fmt.Sprintf("sharded-%s-s%g-seed%d-%dx-%s", preset, scale, seed, shards, partitioner))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// config carries the parsed flags the boot paths share.
type config struct {
	addr         string
	preset       string
	scale        float64
	seed         int64
	loadPath     string
	cacheDir     string
	workers      int
	noCoverCache bool
	batchWindow  time.Duration
	batchMax     int
	timeout      time.Duration
	drainTimeout time.Duration
	exitSnapshot string
	shards       int
	partitioner  string
	shardIndex   int

	walDir          string
	fsync           netclus.SyncPolicy
	fsyncInterval   time.Duration
	checkpointEvery time.Duration
	follow          string
	followPoll      time.Duration
	followWait      time.Duration
	quorum          int
	quorumTimeout   time.Duration
	pprofAddr       string
	logLevel        string
	logFormat       string
	slowQuery       time.Duration

	ingestWorkers    int
	ingestBatch      int
	ingestRadius     float64
	ingestSigma      float64
	ingestBeta       float64
	ingestMaxCand    int
	ingestMinSpacing float64
	ingestOriginLat  float64
	ingestOriginLon  float64
}

func (c *config) engineOpts() netclus.EngineOptions {
	return netclus.EngineOptions{DisableCoverCache: c.noCoverCache}
}

func (c *config) walOptions() netclus.WALOptions {
	return netclus.WALOptions{Policy: c.fsync, Interval: c.fsyncInterval}
}

// ingestOptions lowers the -ingest-* flags; nil disables POST /v1/ingest.
func (c *config) ingestOptions() *netclus.IngestOptions {
	if c.ingestWorkers < 0 {
		return nil
	}
	return &netclus.IngestOptions{
		Workers:  c.ingestWorkers,
		MaxBatch: c.ingestBatch,
		Match: netclus.MatchConfig{
			CandidateRadiusKm: c.ingestRadius,
			MaxCandidates:     c.ingestMaxCand,
			SigmaKm:           c.ingestSigma,
			BetaKm:            c.ingestBeta,
			MinPointSpacingKm: c.ingestMinSpacing,
		},
		OriginLat: c.ingestOriginLat,
		OriginLon: c.ingestOriginLon,
	}
}

func (c *config) checkpointPath() string { return filepath.Join(c.walDir, checkpointName) }

// logger lowers the -log-level/-log-format flags to the process root
// structured logger (stderr, so it never interleaves with stdout status
// lines); fatal on an unknown level or format name.
func (c *config) logger() *slog.Logger {
	lvl, err := netclus.ParseLogLevel(c.logLevel)
	if err != nil {
		fatal(err)
	}
	lg, err := netclus.NewLogger(os.Stderr, lvl, c.logFormat)
	if err != nil {
		fatal(err)
	}
	return lg
}

func main() {
	var c config
	var fsyncName string
	flag.StringVar(&c.addr, "addr", ":8080", "listen address")
	flag.StringVar(&c.preset, "preset", "beijing", "dataset preset to serve")
	flag.Float64Var(&c.scale, "scale", 0.02, "dataset scale")
	flag.Int64Var(&c.seed, "seed", 42, "generation seed")
	flag.StringVar(&c.loadPath, "load", "", "warm-start from this snapshot file (dataset must match)")
	flag.StringVar(&c.cacheDir, "cache", "", "snapshot-cache directory (warm-starts repeat boots, caches cold builds)")
	flag.IntVar(&c.workers, "workers", 0, "index build parallelism for cold builds (0 = all cores)")
	flag.BoolVar(&c.noCoverCache, "no-cover-cache", false, "disable the engine's cover memoization (paper's per-query behaviour)")
	flag.DurationVar(&c.batchWindow, "batch-window", 2*time.Millisecond, "micro-batch coalescing window; 0 disables batching")
	flag.IntVar(&c.batchMax, "batch-max", 64, "micro-batch flush size")
	flag.DurationVar(&c.timeout, "timeout", 10*time.Second, "default per-request deadline")
	flag.DurationVar(&c.drainTimeout, "drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight requests")
	flag.StringVar(&c.exitSnapshot, "snapshot-on-exit", "", "write a final index checkpoint here after draining")
	flag.IntVar(&c.shards, "shards", 1, "number of engine shards; queries scatter-gather across them and site updates invalidate only the owning shard")
	flag.StringVar(&c.partitioner, "partitioner", netclus.ShardByHash, "site partitioner for -shards > 1: hash or grid")
	flag.IntVar(&c.shardIndex, "shard-index", -1, "serve as shard member N of a -shards-wide cross-process topology behind topsrouter (exposes /v1/shard/); -1 disables")
	flag.StringVar(&c.walDir, "wal-dir", "", "write-ahead-log directory: log every update, recover on boot (checkpoint + tail replay)")
	flag.StringVar(&fsyncName, "fsync", string(netclus.FsyncEveryInterval), "WAL fsync policy: always (durable acks), interval (group commit), none")
	flag.DurationVar(&c.fsyncInterval, "fsync-interval", 100*time.Millisecond, "group-commit period for -fsync interval")
	flag.DurationVar(&c.checkpointEvery, "checkpoint-every", 0, "write a recovery checkpoint on this period and compact the log (requires -wal-dir)")
	flag.StringVar(&c.follow, "follow", "", "run as a read-replica tailing this primary URL's /v1/log")
	flag.DurationVar(&c.followPoll, "follow-poll", 500*time.Millisecond, "replica fallback polling period for -follow (used when long-polling is off or returns early)")
	flag.DurationVar(&c.followWait, "follow-wait", 10*time.Second, "replica long-poll window for -follow: how long the primary parks an empty /v1/log read; 0 disables long-polling")
	flag.IntVar(&c.quorum, "quorum", 0, "semi-sync replication: acknowledge an update only after this many followers durably persisted it (requires -wal-dir); 0 disables")
	flag.DurationVar(&c.quorumTimeout, "quorum-timeout", 5*time.Second, "how long an update waits for the -quorum before answering 503 quorum_timeout")
	flag.StringVar(&c.pprofAddr, "pprof", "", "serve net/http/pprof profiling endpoints on this address (e.g. localhost:6060); empty disables")
	flag.StringVar(&c.logLevel, "log-level", "info", "structured log level: debug, info, warn, or error")
	flag.StringVar(&c.logFormat, "log-format", "text", "structured log encoding: text or json")
	flag.DurationVar(&c.slowQuery, "slow-query", 0, "log a structured record for queries slower than this (e.g. 250ms); 0 disables")
	flag.IntVar(&c.ingestWorkers, "ingest-workers", 0, "map-matching worker pool for POST /v1/ingest (0 = all cores capped at 8, -1 disables the endpoint)")
	flag.IntVar(&c.ingestBatch, "ingest-batch", 0, "traces per ingest AddTrajectories mutation (0 = default 64)")
	flag.Float64Var(&c.ingestRadius, "ingest-radius", 0, "matcher candidate radius in km (0 = default 0.3)")
	flag.Float64Var(&c.ingestSigma, "ingest-sigma", 0, "matcher GPS noise sigma in km (0 = default 0.05)")
	flag.Float64Var(&c.ingestBeta, "ingest-beta", 0, "matcher transition tolerance in km (0 = default 0.3)")
	flag.IntVar(&c.ingestMaxCand, "ingest-max-candidates", 0, "matcher candidates per GPS point (0 = default 6)")
	flag.Float64Var(&c.ingestMinSpacing, "ingest-min-spacing", 0, "drop GPS points closer than this many km to their predecessor (0 = keep all)")
	flag.Float64Var(&c.ingestOriginLat, "ingest-origin-lat", 0, "projection origin latitude for lat/lon ingest points")
	flag.Float64Var(&c.ingestOriginLon, "ingest-origin-lon", 0, "projection origin longitude for lat/lon ingest points")
	flag.Parse()

	pol, err := netclus.ParseFsyncPolicy(fsyncName)
	if err != nil {
		fatal(err)
	}
	c.fsync = pol
	if c.cacheDir != "" && c.loadPath != "" {
		fatal(fmt.Errorf("-cache and -load are mutually exclusive: the cache decides which snapshot to read"))
	}
	if c.checkpointEvery > 0 && c.walDir == "" {
		fatal(fmt.Errorf("-checkpoint-every needs -wal-dir (checkpoints live in the log directory)"))
	}
	if c.quorum > 0 && c.walDir == "" {
		fatal(fmt.Errorf("-quorum needs -wal-dir (followers acknowledge log positions)"))
	}
	if c.follow != "" && c.loadPath != "" {
		fatal(fmt.Errorf("-follow bootstraps from its -wal-dir checkpoint or the primary; -load does not apply"))
	}
	if c.walDir != "" && c.loadPath != "" {
		fatal(fmt.Errorf("-load and -wal-dir are mutually exclusive: with a WAL, the checkpoint in the log directory decides the starting state"))
	}
	if c.shardIndex >= 0 {
		// Member mode: -shards is the TOPOLOGY-wide shard count, not this
		// host's in-process fan-out, so the NumCPU cap does not apply — a
		// 16-shard topology boots fine on 4-core members.
		if c.shards < 1 {
			fatal(fmt.Errorf("-shard-index needs -shards >= 1 (the topology-wide shard count)"))
		}
		if c.shardIndex >= c.shards {
			fatal(fmt.Errorf("-shard-index %d outside [0, %d)", c.shardIndex, c.shards))
		}
		if c.cacheDir != "" {
			fatal(fmt.Errorf("-cache does not apply to -shard-index member mode (the cache stores whole-topology manifests); use -wal-dir checkpoints for fast member boots"))
		}
		if c.loadPath != "" {
			fatal(fmt.Errorf("-load reads a whole-dataset snapshot; a shard member rebuilds its partition or recovers from its -wal-dir checkpoint"))
		}
	} else {
		nShards, shardWarn, err := netclus.ValidateShardCount(c.shards)
		if err != nil {
			fatal(err)
		}
		if shardWarn != "" {
			fmt.Fprintln(os.Stderr, shardWarn)
		}
		c.shards = nShards
		if c.shards > 1 && c.loadPath != "" {
			fatal(fmt.Errorf("-load reads a single-index snapshot; with -shards > 1 use -cache, which stores a sharded manifest"))
		}
	}

	if c.follow != "" {
		followerMain(&c)
		return
	}
	primaryMain(&c)
}

// primaryMain boots a read-write server: recover from the WAL directory
// when one is configured, otherwise build/warm-load as before.
func primaryMain(c *config) {
	t0 := time.Now()
	var log *netclus.WAL
	var err error
	if c.walDir != "" {
		log, err = netclus.OpenWAL(c.walDir, c.walOptions())
		if err != nil {
			fatal(err)
		}
	}

	var eng netclus.DurableEngine
	var inst *netclus.Instance
	if log != nil && fileExists(c.checkpointPath()) {
		// Recovery fast path: the checkpoint bundles the mutated dataset,
		// so only the immutable graph comes from the preset.
		d, err := netclus.LoadDataset(dataset.Preset(c.preset), netclus.DatasetConfig{Scale: c.scale, Seed: c.seed})
		if err != nil {
			fatal(err)
		}
		inst = d.Instance
		fmt.Println(d.Summary())
		eng, err = netclus.LoadCheckpointFile(c.checkpointPath(), inst.G, c.engineOpts())
		if err != nil {
			fatal(fmt.Errorf("recovering from %s: %w", c.checkpointPath(), err))
		}
		if c.shardIndex >= 0 {
			if eng, err = memberize(c, eng); err != nil {
				fatal(err)
			}
		} else if c.shards > 1 {
			fmt.Fprintln(os.Stderr, "note: -shards/-partitioner are ignored when recovering from a checkpoint (its topology applies)")
		}
		fmt.Printf("recovered checkpoint %s at LSN %d in %.3fs\n", c.checkpointPath(), eng.LSN(), time.Since(t0).Seconds())
	} else {
		eng, inst, err = buildEngine(c, t0)
		if err != nil {
			fatal(err)
		}
	}

	if log != nil {
		reconcileLog(eng, log, c.walDir)
		n, err := netclus.ReplayWAL(log, eng)
		if err != nil {
			fatal(fmt.Errorf("replaying WAL tail: %w", err))
		}
		if n > 0 {
			fmt.Printf("replayed %d WAL records to LSN %d\n", n, eng.LSN())
		}
		if err := eng.AttachWAL(log); err != nil {
			fatal(err)
		}
		// A durable primary serves under a fencing token. The very first
		// term is 1; recovery keeps the recovered epoch (a restart is not a
		// new term — only promotion opens one).
		if eng.Epoch() == 0 {
			if err := eng.BeginEpoch(1); err != nil {
				fatal(fmt.Errorf("opening epoch 1: %w", err))
			}
		}
	}
	startServer(eng, inst, c, log, nil)
}

// memberize wraps a checkpoint-recovered engine as a shard member. The
// checkpoint holds one shard's partition (a member's WAL only ever logged
// its own mutations); the topology parameters come from the flags, which
// must match what the rest of the topology runs.
func memberize(c *config, eng netclus.DurableEngine) (netclus.DurableEngine, error) {
	se, ok := eng.(*netclus.Engine)
	if !ok {
		return nil, fmt.Errorf("-shard-index needs a single-index checkpoint; this checkpoint holds an in-process sharded topology")
	}
	member, err := netclus.NewShardMember(se, c.shards, c.shardIndex, c.partitioner)
	if err != nil {
		return nil, err
	}
	fmt.Printf("serving as shard member %d of %d (partitioner %s)\n", c.shardIndex, c.shards, c.partitioner)
	return member, nil
}

// reconcileLog handles a checkpoint stamped ahead of the log: under
// group-commit fsync a crash can lose the log's acknowledged tail from the
// page cache while the (always-fsynced) checkpoint survives. Everything
// the log lost is covered by the checkpoint, so the stale log is discarded
// and AttachWAL rebases it at the checkpoint's LSN — the alternative is a
// boot failure an operator can only fix by deleting segment files.
func reconcileLog(eng netclus.DurableEngine, log *netclus.WAL, dir string) {
	if head := log.HeadLSN(); eng.LSN() > head {
		if head > 0 {
			fmt.Fprintf(os.Stderr, "log head LSN %d behind checkpoint LSN %d (tail lost in a crash); resetting %s — the checkpoint covers every lost record\n",
				head, eng.LSN(), dir)
		}
		if err := log.Reset(); err != nil {
			fatal(fmt.Errorf("resetting stale WAL: %w", err))
		}
	}
}

// buildEngine materializes the dataset and its serving engine from the
// preset — warm from the snapshot cache when possible — exactly as a
// WAL-less boot always has.
func buildEngine(c *config, t0 time.Time) (netclus.DurableEngine, *netclus.Instance, error) {
	if c.shardIndex >= 0 {
		d, err := netclus.LoadDataset(dataset.Preset(c.preset), netclus.DatasetConfig{Scale: c.scale, Seed: c.seed})
		if err != nil {
			return nil, nil, err
		}
		fmt.Println(d.Summary())
		member, err := netclus.BuildShardMember(d.Instance, c.shardIndex, netclus.ShardedOptions{
			Shards:      c.shards,
			Partitioner: c.partitioner,
			Build:       netclus.BuildOptions{Workers: c.workers},
			Engine:      c.engineOpts(),
		})
		if err != nil {
			return nil, nil, err
		}
		fmt.Printf("built shard member %d of %d (partitioner %s) in %.1fs\n",
			c.shardIndex, c.shards, c.partitioner, time.Since(t0).Seconds())
		return member, d.Instance, nil
	}
	if c.shards > 1 {
		d, err := netclus.LoadDataset(dataset.Preset(c.preset), netclus.DatasetConfig{Scale: c.scale, Seed: c.seed})
		if err != nil {
			return nil, nil, err
		}
		inst := d.Instance
		fmt.Println(d.Summary())
		sopts := netclus.ShardedOptions{
			Shards:      c.shards,
			Partitioner: c.partitioner,
			Build:       netclus.BuildOptions{Workers: c.workers},
			Engine:      c.engineOpts(),
		}
		var sh *netclus.ShardedEngine
		dir := ""
		if c.cacheDir != "" {
			dir = shardedCacheDir(c.cacheDir, c.preset, c.scale, c.seed, c.shards, c.partitioner)
			warm, err := netclus.LoadShardedDir(dir, inst, sopts)
			switch {
			case err == nil:
				sh = warm
				fmt.Printf("sharded warm load (%d shards) from %s in %.3fs\n", c.shards, dir, time.Since(t0).Seconds())
			case fileExists(filepath.Join(dir, netclus.ShardedManifestName)):
				// A manifest exists but would not load (corrupt file,
				// dataset/generator drift): say why before the expensive
				// cold rebuild overwrites the evidence.
				fmt.Fprintf(os.Stderr, "sharded cache at %s unusable (%v); rebuilding cold\n", dir, err)
			}
		}
		if sh == nil {
			sh, err = netclus.NewShardedEngine(inst, sopts)
			if err != nil {
				return nil, nil, err
			}
			how := "sharded cold build"
			if dir != "" {
				// Best-effort cache population, mirroring LoadIndexedDataset:
				// an unwritable cache never fails the boot.
				if err := netclus.SaveShardedDir(sh, dir); err != nil {
					fmt.Fprintf(os.Stderr, "sharded snapshot cache not written: %v\n", err)
				} else {
					how += " + cache"
				}
			}
			fmt.Printf("%s (%d shards, partitioner %s) in %.1fs\n", how, c.shards, c.partitioner, time.Since(t0).Seconds())
		}
		return sh, inst, nil
	}
	var inst *netclus.Instance
	var idx *netclus.Index
	switch {
	case c.cacheDir != "":
		di, err := netclus.LoadIndexedDataset(dataset.Preset(c.preset),
			netclus.DatasetConfig{Scale: c.scale, Seed: c.seed, CacheDir: c.cacheDir},
			netclus.BuildOptions{Workers: c.workers})
		if err != nil {
			return nil, nil, err
		}
		inst, idx = di.Instance, di.Index
		how := "cold build + cache"
		if di.WarmLoaded {
			how = "warm load"
		}
		fmt.Printf("%s\nindex via %s (%s) in %.3fs\n", di.Summary(), how, di.SnapshotPath, time.Since(t0).Seconds())
	default:
		d, err := netclus.LoadDataset(dataset.Preset(c.preset), netclus.DatasetConfig{Scale: c.scale, Seed: c.seed})
		if err != nil {
			return nil, nil, err
		}
		inst = d.Instance
		fmt.Println(d.Summary())
		if c.loadPath != "" {
			idx, err = netclus.LoadFile(c.loadPath, inst)
			if err != nil {
				return nil, nil, err
			}
			fmt.Printf("warm-started from %s in %.3fs\n", c.loadPath, time.Since(t0).Seconds())
		} else {
			idx, err = netclus.Build(inst, netclus.BuildOptions{Workers: c.workers})
			if err != nil {
				return nil, nil, err
			}
			fmt.Printf("cold build in %.1fs (%d instances, %.1f MB)\n",
				time.Since(t0).Seconds(), len(idx.Instances), float64(idx.MemoryBytes())/(1<<20))
		}
	}
	eng, err := netclus.NewEngine(idx, c.engineOpts())
	if err != nil {
		return nil, nil, err
	}
	return eng, inst, nil
}

// followerMain boots a read-replica: recover local state (checkpoint +
// local log) when -wal-dir is set, bootstrap from the primary's log or
// checkpoint otherwise, then tail /v1/log forever.
func followerMain(c *config) {
	t0 := time.Now()
	ctx := context.Background()
	// The dataset is only materialized on the paths that need it directly
	// (checkpoint loads want just the immutable graph); the buildEngine
	// path loads it itself, so loading eagerly here would do the
	// multi-second generation twice per boot.
	var inst *netclus.Instance
	loadInst := func() *netclus.Instance {
		if inst == nil {
			d, err := netclus.LoadDataset(dataset.Preset(c.preset), netclus.DatasetConfig{Scale: c.scale, Seed: c.seed})
			if err != nil {
				fatal(err)
			}
			inst = d.Instance
			fmt.Println(d.Summary())
		}
		return inst
	}

	var log *netclus.WAL
	var err error
	if c.walDir != "" {
		log, err = netclus.OpenWAL(c.walDir, c.walOptions())
		if err != nil {
			fatal(err)
		}
	}
	var eng netclus.DurableEngine
	if log != nil && fileExists(c.checkpointPath()) {
		eng, err = netclus.LoadCheckpointFile(c.checkpointPath(), loadInst().G, c.engineOpts())
		if err != nil {
			fatal(fmt.Errorf("recovering local checkpoint: %w", err))
		}
		if c.shardIndex >= 0 {
			if eng, err = memberize(c, eng); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("recovered local checkpoint at LSN %d in %.3fs\n", eng.LSN(), time.Since(t0).Seconds())
	}
	if eng == nil {
		// No local checkpoint. A preset-built engine (LSN 0) can only
		// catch up by replaying the history from LSN 1, so that path needs
		// the local log to start at 1 (or be empty) AND the primary to
		// stream the rest; otherwise bootstrap from a checkpoint.
		localFirst := uint64(0)
		localHead := uint64(0)
		if log != nil {
			localFirst, localHead = log.FirstLSN(), log.HeadLSN()
		}
		localComplete := localFirst <= 1 // empty (0) or history from 1
		probeFrom := uint64(1)
		if localComplete && localHead > 0 {
			probeFrom = localHead + 1
		}
		ok, err := netclus.LogAvailableFrom(ctx, nil, c.follow, probeFrom)
		if err != nil {
			fatal(fmt.Errorf("probing primary %s: %w", c.follow, err))
		}
		if ok && localComplete {
			eng, inst, err = buildEngine(c, t0)
			if err != nil {
				fatal(err)
			}
		} else {
			fmt.Printf("replay from LSN 1 unavailable (primary serves from %d: %v, local log covers [%d,%d]); bootstrapping from the primary's checkpoint\n",
				probeFrom, ok, localFirst, localHead)
			if c.shards > 1 && c.shardIndex < 0 {
				fmt.Fprintln(os.Stderr, "note: -shards is ignored when bootstrapping from a primary checkpoint (its topology applies)")
			}
			body, err := netclus.FetchCheckpoint(ctx, nil, c.follow)
			if err != nil {
				fatal(err)
			}
			eng, err = netclus.LoadCheckpoint(body, loadInst().G, c.engineOpts())
			body.Close()
			if err != nil {
				fatal(fmt.Errorf("loading primary checkpoint: %w", err))
			}
			if c.shardIndex >= 0 {
				if eng, err = memberize(c, eng); err != nil {
					fatal(err)
				}
			}
			fmt.Printf("bootstrapped from primary checkpoint at LSN %d in %.3fs\n", eng.LSN(), time.Since(t0).Seconds())
			// A stale local log that does not end exactly at the
			// checkpoint cannot extend it; it is a cache of the primary's
			// stream, so discard it rather than wedge.
			if log != nil && !log.IsEmpty() && log.HeadLSN() != eng.LSN() {
				fmt.Fprintf(os.Stderr, "local WAL at LSN %d does not line up with the checkpoint; resetting %s\n", log.HeadLSN(), c.walDir)
				if err := log.Reset(); err != nil {
					fatal(fmt.Errorf("resetting local WAL: %w", err))
				}
			}
		}
	}
	if log != nil {
		reconcileLog(eng, log, c.walDir)
		n, err := netclus.ReplayWAL(log, eng)
		if err != nil {
			fatal(fmt.Errorf("replaying local WAL tail: %w", err))
		}
		if n > 0 {
			fmt.Printf("replayed %d local WAL records to LSN %d\n", n, eng.LSN())
		}
	}
	wait := c.followWait
	if wait <= 0 {
		wait = -1 // follower convention: negative disables long-polling
	}
	fol, err := netclus.NewFollower(c.follow, eng, log, netclus.FollowerOptions{Poll: c.followPoll, Wait: wait})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("following %s from LSN %d (poll %v, long-poll %v)\n", c.follow, eng.LSN(), c.followPoll, c.followWait)
	startServer(eng, inst, c, log, fol)
}

// startServer mounts the HTTP layer over any serving engine, runs the
// optional checkpoint timer and follower loop, waits for SIGTERM/SIGINT,
// drains, and writes final checkpoints.
func startServer(eng netclus.DurableEngine, inst *netclus.Instance, c *config, log *netclus.WAL, fol *netclus.Follower) {
	window := c.batchWindow
	if window == 0 {
		window = -1 // server convention: negative disables batching
	}
	sopts := netclus.ServeOptions{
		BatchWindow:    window,
		BatchMaxSize:   c.batchMax,
		DefaultTimeout: c.timeout,
		Log:            log,
		Quorum:         c.quorum,
		QuorumTimeout:  c.quorumTimeout,
		Ingest:         c.ingestOptions(),
		Logger:         c.logger(),
		SlowQuery:      c.slowQuery,
	}
	if m, ok := eng.(*netclus.ShardMember); ok {
		sopts.Member = m
	}
	if sopts.Ingest != nil {
		fmt.Printf("ingest: POST /v1/ingest enabled (workers %d, batch %d)\n",
			sopts.Ingest.Workers, sopts.Ingest.MaxBatch)
	}

	bg, stopBg := context.WithCancel(context.Background())
	defer stopBg()
	var folCtx context.Context
	var folCancel context.CancelFunc
	var folDone chan struct{}
	if fol != nil {
		sopts.ReadOnly = true
		sopts.Replication = fol.Status
		// POST /v1/follow re-points the tail loop at a promoted primary
		// without a restart (the surviving-follower half of a failover).
		sopts.Retarget = fol.Retarget
		folCtx, folCancel = context.WithCancel(bg)
		folDone = make(chan struct{})
		// Promotion: stop tailing the deposed primary, replay whatever the
		// tail loop already persisted locally but had not applied, attach
		// the local log for new writes, and open a strictly newer epoch so
		// the old primary is fenced the moment it hears from this node.
		sopts.Promote = func(ctx context.Context) (uint64, error) {
			folCancel()
			select {
			case <-folDone:
			case <-ctx.Done():
				return 0, ctx.Err()
			}
			if log != nil {
				if n, err := netclus.ReplayWAL(log, eng); err != nil {
					return 0, fmt.Errorf("replaying local tail: %w", err)
				} else if n > 0 {
					fmt.Printf("promote: replayed %d local records to LSN %d\n", n, eng.LSN())
				}
				if err := eng.AttachWAL(log); err != nil {
					return 0, fmt.Errorf("attaching local log: %w", err)
				}
			}
			epoch := eng.Epoch() + 1
			if err := eng.BeginEpoch(epoch); err != nil {
				return 0, err
			}
			fmt.Printf("promoted to primary: epoch %d at LSN %d\n", epoch, eng.LSN())
			return epoch, nil
		}
	}
	srv, err := netclus.NewServer(eng, sopts)
	if err != nil {
		fatal(err)
	}

	if c.pprofAddr != "" {
		go servePprof(c.pprofAddr)
	}
	if fol != nil {
		go func() {
			defer close(folDone)
			fol.Run(folCtx)
		}()
	}
	// ckptDone joins the periodic-checkpoint goroutine on shutdown: the
	// final checkpoint below must not race a stale in-flight periodic one,
	// which could otherwise rename an older-LSN checkpoint into place
	// after the log was compacted past it.
	var ckptDone chan struct{}
	if c.checkpointEvery > 0 {
		ckptDone = make(chan struct{})
		go func() {
			defer close(ckptDone)
			checkpointLoop(bg, eng, log, c.checkpointPath(), c.checkpointEvery)
		}()
	}

	httpSrv := &http.Server{Addr: c.addr, Handler: srv}
	errc := make(chan error, 1)
	go func() {
		role := "serving"
		if fol != nil {
			role = "serving (read-replica)"
		}
		// A recovered engine's dataset has diverged from the preset
		// instance by its replayed mutations, so the preset counts would
		// be wrong; report the recovery LSN instead.
		if lsn := eng.LSN(); lsn > 0 {
			fmt.Printf("%s recovered state at LSN %d on %s (batch window %v, max %d)\n",
				role, lsn, c.addr, c.batchWindow, c.batchMax)
		} else {
			fmt.Printf("%s %d trajectories / %d sites on %s (batch window %v, max %d)\n",
				role, inst.M(), inst.N(), c.addr, c.batchWindow, c.batchMax)
		}
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		fmt.Printf("\n%s: draining (up to %v)…\n", sig, c.drainTimeout)
	}

	// Drain: stop advertising health, let in-flight requests finish, then
	// stop the batcher (its last flush delivers before Close returns) and
	// the background loops.
	srv.SetDraining(true)
	ctx, cancel := context.WithTimeout(context.Background(), c.drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "drain incomplete: %v\n", err)
	}
	srv.Close()
	stopBg()
	if ckptDone != nil {
		<-ckptDone
	}

	if c.exitSnapshot != "" {
		if err := writeStream(c.exitSnapshot, eng.Snapshot); err != nil {
			fatal(fmt.Errorf("final snapshot: %w", err))
		}
		fmt.Printf("final snapshot written to %s\n", c.exitSnapshot)
	}
	if c.checkpointEvery > 0 {
		if err := checkpointOnce(eng, log, c.checkpointPath()); err != nil {
			fmt.Fprintf(os.Stderr, "final checkpoint: %v\n", err)
		} else {
			fmt.Printf("final checkpoint written to %s\n", c.checkpointPath())
		}
	}
	if log != nil {
		if err := log.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "closing WAL: %v\n", err)
		}
	}
	fmt.Println("drained; bye")
}

// servePprof exposes the runtime profiling endpoints on their own listener,
// so profiles can be pulled from a production server without mixing the
// debug surface into the query API's address (which may be public):
//
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
//	go tool pprof http://localhost:6060/debug/pprof/allocs
//	curl -s localhost:6060/debug/pprof/heap -o heap.pb.gz
func servePprof(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	fmt.Printf("pprof on %s\n", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		fmt.Fprintf(os.Stderr, "pprof server: %v\n", err)
	}
}

// checkpointLoop writes a recovery checkpoint every period and compacts
// the log up to the LSN the checkpoint is guaranteed to cover.
func checkpointLoop(ctx context.Context, eng netclus.DurableEngine, log *netclus.WAL, path string, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := checkpointOnce(eng, log, path); err != nil {
				fmt.Fprintf(os.Stderr, "periodic checkpoint: %v\n", err)
			}
		}
	}
}

// checkpointOnce writes one checkpoint atomically and advances compaction.
// The watermark is the engine's LSN observed before the write: the
// checkpoint is stamped at least that high, so every compacted record is
// covered by it.
func checkpointOnce(eng netclus.DurableEngine, log *netclus.WAL, path string) error {
	watermark := eng.LSN()
	if err := netclus.SaveCheckpointFile(eng, path); err != nil {
		return err
	}
	if log != nil {
		if _, err := log.Compact(watermark); err != nil {
			return fmt.Errorf("compacting log: %w", err)
		}
	}
	return nil
}

// writeStream checkpoints a stream-writing method atomically (temp file +
// fsync + rename, via the WAL package's audited helper). A sharded
// engine's Snapshot writes its container format; reload it with
// netclus.LoadShardedSnapshot against the same full dataset.
func writeStream(path string, fill func(io.Writer) (int64, error)) error {
	return wal.AtomicWriteFile(path, func(w io.Writer) error {
		_, err := fill(w)
		return err
	})
}
