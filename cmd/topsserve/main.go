// Command topsserve serves TOPS queries over HTTP: it materializes a
// dataset preset, warm-starts the NETCLUS index from a snapshot when one is
// available (the PR-2 lifecycle: -cache / -load), wraps it in the
// concurrent engine, and exposes the internal/server JSON API with
// micro-batched admission and graceful drain.
//
// Usage:
//
//	topsserve -preset beijing -scale 0.02 -cache .ncache
//	topsserve -preset beijing -scale 0.02 -load bj.ncss -addr :8080
//	topsserve -preset atlanta -batch-window 1ms -batch-max 128
//
// Query it:
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/query -d '{"k":5,"tau":0.8}'
//	curl -s -X POST localhost:8080/v1/update -d '{"op":"delete_site","node":17}'
//	curl -s -X POST localhost:8080/v1/snapshot -o index.ncss
//	curl -s localhost:8080/statsz
//
// SIGTERM/SIGINT starts a graceful drain: /healthz flips to 503 so load
// balancers stop routing here, in-flight requests finish (bounded by
// -drain-timeout), the micro-batcher delivers its last flush, and an
// optional -snapshot-on-exit checkpoint is written before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"netclus"
	"netclus/internal/dataset"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		preset       = flag.String("preset", "beijing", "dataset preset to serve")
		scale        = flag.Float64("scale", 0.02, "dataset scale")
		seed         = flag.Int64("seed", 42, "generation seed")
		loadPath     = flag.String("load", "", "warm-start from this snapshot file (dataset must match)")
		cacheDir     = flag.String("cache", "", "snapshot-cache directory (warm-starts repeat boots, caches cold builds)")
		workers      = flag.Int("workers", 0, "index build parallelism for cold builds (0 = all cores)")
		noCoverCache = flag.Bool("no-cover-cache", false, "disable the engine's cover memoization (paper's per-query behaviour)")
		batchWindow  = flag.Duration("batch-window", 2*time.Millisecond, "micro-batch coalescing window; 0 disables batching")
		batchMax     = flag.Int("batch-max", 64, "micro-batch flush size")
		timeout      = flag.Duration("timeout", 10*time.Second, "default per-request deadline")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight requests")
		exitSnapshot = flag.String("snapshot-on-exit", "", "write a final index checkpoint here after draining")
	)
	flag.Parse()
	if *cacheDir != "" && *loadPath != "" {
		fatal(fmt.Errorf("-cache and -load are mutually exclusive: the cache decides which snapshot to read"))
	}

	// Materialize the dataset and its index, warm when possible.
	t0 := time.Now()
	var idx *netclus.Index
	var inst *netclus.Instance
	switch {
	case *cacheDir != "":
		di, err := netclus.LoadIndexedDataset(dataset.Preset(*preset),
			netclus.DatasetConfig{Scale: *scale, Seed: *seed, CacheDir: *cacheDir},
			netclus.BuildOptions{Workers: *workers})
		if err != nil {
			fatal(err)
		}
		inst, idx = di.Instance, di.Index
		how := "cold build + cache"
		if di.WarmLoaded {
			how = "warm load"
		}
		fmt.Printf("%s\nindex via %s (%s) in %.3fs\n", di.Summary(), how, di.SnapshotPath, time.Since(t0).Seconds())
	default:
		d, err := netclus.LoadDataset(dataset.Preset(*preset), netclus.DatasetConfig{Scale: *scale, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		inst = d.Instance
		fmt.Println(d.Summary())
		if *loadPath != "" {
			idx, err = netclus.LoadFile(*loadPath, inst)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("warm-started from %s in %.3fs\n", *loadPath, time.Since(t0).Seconds())
		} else {
			idx, err = netclus.Build(inst, netclus.BuildOptions{Workers: *workers})
			if err != nil {
				fatal(err)
			}
			fmt.Printf("cold build in %.1fs (%d instances, %.1f MB)\n",
				time.Since(t0).Seconds(), len(idx.Instances), float64(idx.MemoryBytes())/(1<<20))
		}
	}

	eng, err := netclus.NewEngine(idx, netclus.EngineOptions{DisableCoverCache: *noCoverCache})
	if err != nil {
		fatal(err)
	}
	window := *batchWindow
	if window == 0 {
		window = -1 // server convention: negative disables batching
	}
	srv, err := netclus.NewServer(eng, netclus.ServeOptions{
		BatchWindow:    window,
		BatchMaxSize:   *batchMax,
		DefaultTimeout: *timeout,
	})
	if err != nil {
		fatal(err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	errc := make(chan error, 1)
	go func() {
		fmt.Printf("serving %d trajectories / %d sites on %s (batch window %v, max %d)\n",
			inst.M(), inst.N(), *addr, *batchWindow, *batchMax)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		fmt.Printf("\n%s: draining (up to %v)…\n", sig, *drainTimeout)
	}

	// Drain: stop advertising health, let in-flight requests finish, then
	// stop the batcher (its last flush delivers before Close returns).
	srv.SetDraining(true)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "drain incomplete: %v\n", err)
	}
	srv.Close()

	if *exitSnapshot != "" {
		if err := writeSnapshot(eng, *exitSnapshot); err != nil {
			fatal(fmt.Errorf("final snapshot: %w", err))
		}
		fmt.Printf("final snapshot written to %s\n", *exitSnapshot)
	}
	fmt.Println("drained; bye")
}

// writeSnapshot checkpoints the engine's index atomically (temp file +
// rename in the target directory).
func writeSnapshot(eng *netclus.Engine, path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".topsserve-snap-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func() {
		f.Close()
		os.Remove(tmp)
	}
	if _, err := eng.Snapshot(f); err != nil {
		cleanup()
		return err
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
