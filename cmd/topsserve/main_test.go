package main

// Kill-and-recover differential: a real topsserve child is SIGKILLed in the
// middle of an acknowledged update stream and restarted on the same WAL
// directory; the recovered process must serve query results bit-identical
// to an in-process twin that applied exactly the recovered prefix and was
// never interrupted — for both the single-index and the sharded topology.
// A follower then tails the recovered primary and must converge to the
// same answers. This is the process-level closure of the in-process
// recovery differentials in internal/engine and internal/shard.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"netclus"
	"netclus/internal/dataset"
)

const (
	tPreset = "beijing-small"
	tScale  = 0.2
	tSeed   = 7
)

func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "topsserve")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building topsserve: %v\n%s", err, out)
	}
	return bin
}

func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

type child struct {
	cmd  *exec.Cmd
	addr string
	logf *os.File
}

func startChild(t *testing.T, bin, addr string, extra ...string) *child {
	t.Helper()
	args := append([]string{
		"-preset", tPreset, "-scale", fmt.Sprint(tScale), "-seed", fmt.Sprint(tSeed),
		"-addr", addr, "-batch-window", "0",
	}, extra...)
	logf, err := os.CreateTemp(t.TempDir(), "child-*.log")
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, args...)
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	c := &child{cmd: cmd, addr: addr, logf: logf}
	t.Cleanup(func() {
		if c.cmd.Process != nil {
			c.cmd.Process.Kill()
			c.cmd.Wait()
		}
		if t.Failed() {
			logf.Seek(0, 0)
			out, _ := io.ReadAll(logf)
			t.Logf("child %s log:\n%s", addr, out)
		}
	})
	return c
}

func (c *child) url() string { return "http://" + c.addr }

func (c *child) waitHealthy(t *testing.T, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(c.url() + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("child %s never became healthy", c.addr)
}

func (c *child) kill(t *testing.T) {
	t.Helper()
	if err := c.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	c.cmd.Wait()
}

func (c *child) statszLSN(t *testing.T) uint64 {
	t.Helper()
	resp, err := http.Get(c.url() + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Engine struct {
			LSN uint64 `json:"lsn"`
		} `json:"engine"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body.Engine.LSN
}

// update is one scripted /v1/update call that is also applicable to the
// in-process twin.
type update struct {
	op    string
	node  int64
	nodes []int64
	id    int64
}

func (u update) wire() string {
	switch u.op {
	case "add_site", "delete_site":
		return fmt.Sprintf(`{"op":%q,"node":%d}`, u.op, u.node)
	case "add_trajectory":
		raw, _ := json.Marshal(u.nodes)
		return fmt.Sprintf(`{"op":"add_trajectory","nodes":%s}`, raw)
	default:
		return fmt.Sprintf(`{"op":"delete_trajectory","id":%d}`, u.id)
	}
}

func (u update) applyTwin(t *testing.T, eng netclus.DurableEngine) {
	t.Helper()
	var err error
	switch u.op {
	case "add_site":
		err = eng.AddSite(netclus.NodeID(u.node))
	case "delete_site":
		err = eng.DeleteSite(netclus.NodeID(u.node))
	case "add_trajectory":
		nodes := make([]netclus.NodeID, len(u.nodes))
		for i, v := range u.nodes {
			nodes[i] = netclus.NodeID(v)
		}
		g := eng.Graph()
		tr, terr := netclus.NewTrajectory(g, nodes)
		if terr != nil {
			t.Fatal(terr)
		}
		_, err = eng.AddTrajectory(tr)
	default:
		err = eng.DeleteTrajectory(netclus.TrajectoryID(u.id))
	}
	if err != nil {
		t.Fatalf("twin %s: %v", u.op, err)
	}
}

// script builds a deterministic update sequence that is valid when applied
// in order from the pristine preset: site adds over never-before-used
// nodes, deletes of distinct original sites, one trajectory add, one
// trajectory delete.
func script(t *testing.T, inst *netclus.Instance, n int) []update {
	t.Helper()
	isSite := make(map[netclus.NodeID]bool, len(inst.Sites))
	for _, s := range inst.Sites {
		isSite[s] = true
	}
	var free []int64
	for v := 0; v < inst.G.NumNodes() && len(free) < n; v++ {
		if !isSite[netclus.NodeID(v)] {
			free = append(free, int64(v))
		}
	}
	var ups []update
	tr0 := inst.Trajs.Get(0)
	for i := 0; len(ups) < n; i++ {
		switch {
		case i == 3:
			ups = append(ups, update{op: "delete_site", node: int64(inst.Sites[0])})
		case i == 5:
			var nodes []int64
			for _, v := range tr0.Nodes {
				nodes = append(nodes, int64(v))
			}
			ups = append(ups, update{op: "add_trajectory", nodes: nodes})
		case i == 8:
			ups = append(ups, update{op: "delete_trajectory", id: 1})
		default:
			ups = append(ups, update{op: "add_site", node: free[0]})
			free = free[1:]
		}
	}
	return ups
}

// queryBoth asserts that the HTTP server and the in-process twin answer a
// query identically, bit for bit.
func queryBoth(t *testing.T, url string, twin netclus.DurableEngine, k int, tau float64) {
	t.Helper()
	resp, err := http.Post(url+"/v1/query", "application/json",
		strings.NewReader(fmt.Sprintf(`{"k":%d,"tau":%g}`, k, tau)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query k=%d tau=%g: %d %s", k, tau, resp.StatusCode, raw)
	}
	var got struct {
		Sites            []int64 `json:"sites"`
		SiteIDs          []int32 `json:"site_ids"`
		EstimatedUtility float64 `json:"estimated_utility"`
		EstimatedCovered int     `json:"estimated_covered"`
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	want, err := twin.Query(context.Background(), netclus.QueryOptions{K: k, Pref: netclus.Binary(tau)})
	if err != nil {
		t.Fatal(err)
	}
	if got.EstimatedUtility != want.EstimatedUtility || got.EstimatedCovered != want.EstimatedCovered ||
		len(got.Sites) != len(want.Sites) {
		t.Fatalf("k=%d tau=%g: server {u=%v c=%d n=%d} twin {u=%v c=%d n=%d}",
			k, tau, got.EstimatedUtility, got.EstimatedCovered, len(got.Sites),
			want.EstimatedUtility, want.EstimatedCovered, len(want.Sites))
	}
	for i := range got.Sites {
		if got.Sites[i] != int64(want.Sites[i]) || got.SiteIDs[i] != int32(want.SiteIDs[i]) {
			t.Fatalf("k=%d tau=%g site %d: server (%d,%d) twin (%d,%d)",
				k, tau, i, got.Sites[i], got.SiteIDs[i], want.Sites[i], want.SiteIDs[i])
		}
	}
}

func twinEngine(t *testing.T, shards int) (netclus.DurableEngine, *netclus.Instance) {
	t.Helper()
	d, err := netclus.LoadDataset(dataset.Preset(tPreset), netclus.DatasetConfig{Scale: tScale, Seed: tSeed})
	if err != nil {
		t.Fatal(err)
	}
	if shards > 1 {
		sh, err := netclus.NewShardedEngine(d.Instance, netclus.ShardedOptions{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		return sh, d.Instance
	}
	idx, err := netclus.Build(d.Instance, netclus.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := netclus.NewEngine(idx, netclus.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return eng, d.Instance
}

func TestKillRecoverDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real topsserve processes; skipped under -short")
	}
	bin := buildBinary(t)
	for _, tc := range []struct {
		name   string
		shards int
	}{
		{"single", 1},
		{"sharded", 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cacheDir := filepath.Join(t.TempDir(), "cache")
			walDir := filepath.Join(t.TempDir(), "wal")
			shardArgs := []string{"-shards", fmt.Sprint(tc.shards)}

			// The twin also tells us which updates are valid.
			twin, inst := twinEngine(t, tc.shards)
			ups := script(t, inst, 30)

			// Phase 1: boot A, stream updates, SIGKILL mid-stream.
			a := startChild(t, bin, freePort(t), append(shardArgs,
				"-cache", cacheDir, "-wal-dir", walDir, "-fsync", "always")...)
			a.waitHealthy(t, 5*time.Minute)
			// The log is not all mutations: a fresh durable primary opens
			// epoch 1 as its first record, so update counts are LSN-baseLSN.
			baseLSN := a.statszLSN(t)
			acked := 0
			killAt := 12
			for i, u := range ups {
				resp, err := http.Post(a.url()+"/v1/update", "application/json", strings.NewReader(u.wire()))
				if err != nil {
					break // killed under us — acceptable only after killAt
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("update %d: status %d", i, resp.StatusCode)
				}
				acked++
				if acked == killAt {
					a.kill(t)
					break
				}
			}
			if acked < killAt {
				t.Fatalf("only %d updates acknowledged before the kill", acked)
			}

			// Phase 2: boot B on the same WAL dir (with periodic
			// checkpoints); it must recover every acknowledged update.
			b := startChild(t, bin, freePort(t), append(shardArgs,
				"-cache", cacheDir, "-wal-dir", walDir, "-fsync", "always",
				"-checkpoint-every", "200ms")...)
			b.waitHealthy(t, 2*time.Minute)
			lsn := b.statszLSN(t)
			muts := lsn - baseLSN
			if muts < uint64(acked) {
				t.Fatalf("recovered %d updates (LSN %d) < %d acknowledged (-fsync always lost an ack)", muts, lsn, acked)
			}
			if muts > uint64(len(ups)) {
				t.Fatalf("recovered %d updates > %d sent", muts, len(ups))
			}
			for _, u := range ups[:muts] {
				u.applyTwin(t, twin)
			}
			for _, q := range []struct {
				k   int
				tau float64
			}{{3, 0.8}, {5, 1.6}, {8, 2.8}} {
				queryBoth(t, b.url(), twin, q.k, q.tau)
			}

			// Phase 3: more acknowledged updates, wait for a checkpoint to
			// land, SIGKILL again; C must recover from checkpoint + tail.
			extra := ups[muts:]
			if len(extra) > 5 {
				extra = extra[:5]
			}
			for i, u := range extra {
				resp, err := http.Post(b.url()+"/v1/update", "application/json", strings.NewReader(u.wire()))
				if err != nil {
					t.Fatalf("phase-3 update %d: %v", i, err)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("phase-3 update %d: status %d", i, resp.StatusCode)
				}
				u.applyTwin(t, twin)
			}
			lsn2 := b.statszLSN(t)
			ckpt := filepath.Join(walDir, "checkpoint.ncck")
			deadline := time.Now().Add(30 * time.Second)
			for {
				if _, err := os.Stat(ckpt); err == nil {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("periodic checkpoint never appeared")
				}
				time.Sleep(50 * time.Millisecond)
			}
			b.kill(t)

			c := startChild(t, bin, freePort(t), append(shardArgs,
				"-cache", cacheDir, "-wal-dir", walDir, "-fsync", "always")...)
			c.waitHealthy(t, 2*time.Minute)
			if got := c.statszLSN(t); got != lsn2 {
				t.Fatalf("checkpoint recovery LSN %d, want %d", got, lsn2)
			}
			for _, q := range []struct {
				k   int
				tau float64
			}{{4, 1.1}, {6, 2.2}} {
				queryBoth(t, c.url(), twin, q.k, q.tau)
			}

			// Phase 4: a follower tails the recovered primary and converges
			// to identical answers; its writes bounce with 403.
			f := startChild(t, bin, freePort(t), append(shardArgs,
				"-cache", cacheDir, "-follow", c.url(), "-follow-poll", "100ms")...)
			f.waitHealthy(t, 2*time.Minute)
			deadline = time.Now().Add(60 * time.Second)
			for f.statszLSN(t) != lsn2 {
				if time.Now().After(deadline) {
					t.Fatalf("follower stuck at LSN %d, primary at %d", f.statszLSN(t), lsn2)
				}
				time.Sleep(100 * time.Millisecond)
			}
			for _, q := range []struct {
				k   int
				tau float64
			}{{4, 1.1}, {6, 2.2}} {
				queryBoth(t, f.url(), twin, q.k, q.tau)
			}
			resp, err := http.Post(f.url()+"/v1/update", "application/json",
				strings.NewReader(`{"op":"add_site","node":2}`))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusForbidden {
				t.Fatalf("follower accepted a write: %d", resp.StatusCode)
			}
		})
	}
}

// TestFailoverPromoteDifferential is the process-level failover drill: the
// real primary is SIGKILLed, the follower is promoted via POST /v1/promote
// and opens a new epoch, further writes land on it, and its answers stay
// bit-identical to an uninterrupted in-process twin. The restarted old
// primary is fenced the moment it hears the new epoch and cannot accept
// writes that would fork the log.
func TestFailoverPromoteDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real topsserve processes; skipped under -short")
	}
	bin := buildBinary(t)
	cacheDir := filepath.Join(t.TempDir(), "cache")
	walA := filepath.Join(t.TempDir(), "wal-a")
	walF := filepath.Join(t.TempDir(), "wal-f")

	twin, inst := twinEngine(t, 1)
	ups := script(t, inst, 15)

	// Primary A and follower F, both durable; F long-polls A's log.
	a := startChild(t, bin, freePort(t), "-cache", cacheDir, "-wal-dir", walA, "-fsync", "always")
	a.waitHealthy(t, 5*time.Minute)
	baseLSN := a.statszLSN(t) // epoch 1's record
	f := startChild(t, bin, freePort(t),
		"-cache", cacheDir, "-wal-dir", walF, "-fsync", "always",
		"-follow", a.url(), "-follow-poll", "2s", "-follow-wait", "10s")
	f.waitHealthy(t, 2*time.Minute)

	phase1 := ups[:10]
	for i, u := range phase1 {
		resp, err := http.Post(a.url()+"/v1/update", "application/json", strings.NewReader(u.wire()))
		if err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("update %d: status %d", i, resp.StatusCode)
		}
		u.applyTwin(t, twin)
	}
	target := baseLSN + uint64(len(phase1))
	deadline := time.Now().Add(60 * time.Second)
	for f.statszLSN(t) != target {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at LSN %d, primary at %d", f.statszLSN(t), target)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// The primary dies hard; the follower takes over.
	a.kill(t)
	resp, err := http.Post(f.url()+"/v1/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: %d %s", resp.StatusCode, raw)
	}
	var pr struct {
		OK    bool   `json:"ok"`
		Role  string `json:"role"`
		Epoch uint64 `json:"epoch"`
	}
	if err := json.Unmarshal(raw, &pr); err != nil {
		t.Fatal(err)
	}
	if !pr.OK || pr.Role != "primary" || pr.Epoch != 2 {
		t.Fatalf("promote response: %+v", pr)
	}
	// A promoted node is a healthy primary, not a stalled replica.
	hresp, err := http.Get(f.url() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("promoted /healthz: %d", hresp.StatusCode)
	}

	// Writes now land on the promoted follower; answers stay bit-exact
	// against the uninterrupted twin.
	for i, u := range ups[10:] {
		resp, err := http.Post(f.url()+"/v1/update", "application/json", strings.NewReader(u.wire()))
		if err != nil {
			t.Fatalf("post-promote update %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-promote update %d: status %d", i, resp.StatusCode)
		}
		u.applyTwin(t, twin)
	}
	for _, q := range []struct {
		k   int
		tau float64
	}{{3, 0.8}, {5, 1.6}, {8, 2.8}} {
		queryBoth(t, f.url(), twin, q.k, q.tau)
	}

	// The deposed primary restarts on its old log (still epoch 1) and is
	// fenced as soon as a peer presents epoch 2 on its replication surface:
	// it can serve reads but must reject writes that would fork history.
	a2 := startChild(t, bin, freePort(t), "-cache", cacheDir, "-wal-dir", walA, "-fsync", "always")
	a2.waitHealthy(t, 2*time.Minute)
	fence, err := http.Get(fmt.Sprintf("%s/v1/log?from=1&max=1&peer_epoch=%d", a2.url(), pr.Epoch))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, fence.Body)
	fence.Body.Close()
	if fence.StatusCode != http.StatusOK {
		t.Fatalf("fencing tail request: %d", fence.StatusCode)
	}
	uresp, err := http.Post(a2.url()+"/v1/update", "application/json",
		strings.NewReader(`{"op":"delete_site","node":`+fmt.Sprint(int64(inst.Sites[1]))+`}`))
	if err != nil {
		t.Fatal(err)
	}
	uraw, _ := io.ReadAll(uresp.Body)
	uresp.Body.Close()
	if uresp.StatusCode != http.StatusConflict {
		t.Fatalf("deposed primary accepted a write: %d %s", uresp.StatusCode, uraw)
	}
	var env struct {
		Code string `json:"code"`
	}
	if err := json.Unmarshal(uraw, &env); err != nil {
		t.Fatal(err)
	}
	if env.Code != "fenced" {
		t.Fatalf("deposed primary error code %q, want fenced (%s)", env.Code, uraw)
	}
}
