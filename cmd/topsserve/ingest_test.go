package main

// Ingest differential: a generated GPS feed streamed through a real
// topsserve child's POST /v1/ingest must leave the served state
// bit-identical to an in-process twin that map-matched the same traces
// and applied them directly via AddTrajectories with the same window
// grouping — including the LSN accounting (one WAL record per window).
// The ingested state must then survive SIGKILL → WAL recovery and
// replicate to a follower. This is the live-ingestion closure of
// TestKillRecoverDifferential.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"netclus"
)

const ingestBatch = 4

// ingestTraces emits clean-ish GPS traces from the preset's own
// trajectories (IDs [from, to)) — guaranteed on-network, so every line
// should match.
func ingestTraces(t *testing.T, inst *netclus.Instance, from, to int) []netclus.GPSTrace {
	t.Helper()
	var traces []netclus.GPSTrace
	for i := from; i < to; i++ {
		tr := inst.Trajs.Get(netclus.TrajectoryID(i))
		if tr == nil {
			t.Fatalf("preset trajectory %d missing", i)
		}
		traces = append(traces, netclus.EmitGPS(inst.G, tr,
			netclus.GPSConfig{SampleEveryKm: 0.15, NoiseSigmaKm: 0.01, Seed: int64(9000 + i)}))
	}
	return traces
}

func ndjson(traces []netclus.GPSTrace) string {
	var sb strings.Builder
	for i, tr := range traces {
		sb.WriteString(fmt.Sprintf(`{"id":"t%d","points":[`, i))
		for j, p := range tr.Points {
			if j > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(fmt.Sprintf(`{"x":%g,"y":%g,"t":%g}`, p.Pos.X, p.Pos.Y, p.Time))
		}
		sb.WriteString("]}\n")
	}
	return sb.String()
}

// streamIngest POSTs the feed and returns the verdict lines; every line
// must carry a trajectory id (the feed is clean by construction).
func streamIngest(t *testing.T, url, feed string) int {
	t.Helper()
	resp, err := http.Post(url+"/v1/ingest", "application/x-ndjson", strings.NewReader(feed))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("ingest status %d: %s", resp.StatusCode, raw)
	}
	matched := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var v netclus.IngestVerdict
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("bad verdict line %q: %v", sc.Text(), err)
		}
		if v.Code != "" {
			t.Fatalf("line %d rejected (%s): %s", v.Line, v.Code, v.Err)
		}
		if v.TrajectoryID == nil {
			t.Fatalf("line %d verdict missing trajectory_id", v.Line)
		}
		matched++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return matched
}

// applyTwinIngest mirrors the server pipeline on the in-process twin:
// match each trace with the same (default) matcher config and apply in
// the same windows of ingestBatch.
func applyTwinIngest(t *testing.T, twin netclus.DurableEngine, m *netclus.Matcher, traces []netclus.GPSTrace) {
	t.Helper()
	var window []*netclus.Trajectory
	flush := func() {
		if len(window) == 0 {
			return
		}
		if _, err := twin.AddTrajectories(window); err != nil {
			t.Fatalf("twin AddTrajectories: %v", err)
		}
		window = nil
	}
	for i, trc := range traces {
		tr, err := m.Match(trc)
		if err != nil {
			t.Fatalf("twin match %d: %v", i, err)
		}
		window = append(window, tr)
		if len(window) == ingestBatch {
			flush()
		}
	}
	flush()
}

func ingestStatsz(t *testing.T, url string) netclus.IngestStats {
	t.Helper()
	resp, err := http.Get(url + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Ingest *netclus.IngestStats `json:"ingest"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Ingest == nil {
		t.Fatal("/statsz has no ingest block")
	}
	return *body.Ingest
}

func TestIngestKillRecoverDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real topsserve processes; skipped under -short")
	}
	bin := buildBinary(t)
	cacheDir := filepath.Join(t.TempDir(), "cache")
	walDir := filepath.Join(t.TempDir(), "wal")

	twin, inst := twinEngine(t, 1)
	matcher := netclus.NewMatcher(inst.G, netclus.MatchConfig{})
	phase1 := ingestTraces(t, inst, 0, 10)
	phase2 := ingestTraces(t, inst, 10, 14)
	ingestArgs := []string{"-ingest-workers", "2", "-ingest-batch", fmt.Sprint(ingestBatch)}

	// Phase 1: boot a durable primary, stream the feed, check the LSN
	// arithmetic (one record per window) and bit-identical answers.
	a := startChild(t, bin, freePort(t), append(ingestArgs,
		"-cache", cacheDir, "-wal-dir", walDir, "-fsync", "always")...)
	a.waitHealthy(t, 5*time.Minute)
	baseLSN := a.statszLSN(t) // epoch record

	if matched := streamIngest(t, a.url(), ndjson(phase1)); matched != len(phase1) {
		t.Fatalf("phase 1 matched %d/%d traces", matched, len(phase1))
	}
	applyTwinIngest(t, twin, matcher, phase1)
	wantBatches := uint64((len(phase1) + ingestBatch - 1) / ingestBatch)
	if lsn := a.statszLSN(t); lsn != baseLSN+wantBatches {
		t.Fatalf("primary LSN %d, want %d (%d windows over base %d)", lsn, baseLSN+wantBatches, wantBatches, baseLSN)
	}
	st := ingestStatsz(t, a.url())
	if st.TracesIn != uint64(len(phase1)) || st.Matched != uint64(len(phase1)) || st.Rejected != 0 {
		t.Fatalf("primary ingest stats %+v, want %d in / %d matched / 0 rejected", st, len(phase1), len(phase1))
	}
	for _, q := range []struct {
		k   int
		tau float64
	}{{3, 0.8}, {6, 2.2}} {
		queryBoth(t, a.url(), twin, q.k, q.tau)
	}
	preKillLSN := a.statszLSN(t)
	a.kill(t)

	// Phase 2: recover on the same WAL dir — the ingested trajectories
	// must come back from the log, then accept more live traffic.
	b := startChild(t, bin, freePort(t), append(ingestArgs,
		"-cache", cacheDir, "-wal-dir", walDir, "-fsync", "always")...)
	b.waitHealthy(t, 2*time.Minute)
	if lsn := b.statszLSN(t); lsn != preKillLSN {
		t.Fatalf("recovered LSN %d, want %d", lsn, preKillLSN)
	}
	for _, q := range []struct {
		k   int
		tau float64
	}{{3, 0.8}, {6, 2.2}} {
		queryBoth(t, b.url(), twin, q.k, q.tau)
	}
	if matched := streamIngest(t, b.url(), ndjson(phase2)); matched != len(phase2) {
		t.Fatalf("phase 2 matched %d/%d traces", matched, len(phase2))
	}
	applyTwinIngest(t, twin, matcher, phase2)
	lsn2 := b.statszLSN(t)
	for _, q := range []struct {
		k   int
		tau float64
	}{{4, 1.1}, {8, 2.8}} {
		queryBoth(t, b.url(), twin, q.k, q.tau)
	}

	// Phase 3: a follower tails the primary and converges to the same
	// ingested state; its own /v1/ingest bounces with 403 read_only.
	f := startChild(t, bin, freePort(t), append(ingestArgs,
		"-cache", cacheDir, "-follow", b.url(), "-follow-poll", "100ms")...)
	f.waitHealthy(t, 2*time.Minute)
	deadline := time.Now().Add(60 * time.Second)
	for f.statszLSN(t) != lsn2 {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at LSN %d, primary at %d", f.statszLSN(t), lsn2)
		}
		time.Sleep(100 * time.Millisecond)
	}
	for _, q := range []struct {
		k   int
		tau float64
	}{{4, 1.1}, {8, 2.8}} {
		queryBoth(t, f.url(), twin, q.k, q.tau)
	}
	resp, err := http.Post(f.url()+"/v1/ingest", "application/x-ndjson", strings.NewReader(ndjson(phase2[:1])))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("follower accepted an ingest stream: %d %s", resp.StatusCode, raw)
	}
	var e struct {
		Code string `json:"code"`
	}
	if err := json.Unmarshal(raw, &e); err != nil || e.Code != "read_only" {
		t.Fatalf("follower ingest error %s, want code read_only", raw)
	}
}
