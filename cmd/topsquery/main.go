// Command topsquery answers interactive TOPS queries over a dataset: it
// generates (or loads) a dataset, builds the NETCLUS index once, and then
// answers (k, τ, ψ) queries, demonstrating the interactive usage pattern
// the paper motivates ("OL queries are typically used in an interactive
// fashion by varying the various parameters such as k and τ").
//
// Usage:
//
//	topsquery -preset beijing -scale 0.02 -k 5 -tau 0.8
//	topsquery -preset beijing -scale 0.02 -k 5 -tau 0.8 -sweep
//	topsquery -preset atlanta -k 10 -tau 1.6 -pref convex -compare
//	topsquery -graph data/bj.graph -trajs data/bj.trajs -k 5 -tau 0.8
//	topsquery -preset beijing -save bj.ncss          # build once, snapshot
//	topsquery -preset beijing -load bj.ncss -sweep   # warm-start from it
//
// Index construction, persistence and serving all go through the public
// netclus facade — this command is the reference consumer of the supported
// surface.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"netclus"
	"netclus/internal/dataset"
	"netclus/internal/gen"
	"netclus/internal/geojson"
	"netclus/internal/roadnet"
	"netclus/internal/tops"
	"netclus/internal/trajectory"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func main() {
	var (
		preset    = flag.String("preset", "beijing", "dataset preset to generate")
		scale     = flag.Float64("scale", 0.02, "dataset scale")
		seed      = flag.Int64("seed", 42, "generation seed")
		graphPath = flag.String("graph", "", "load road network from this .graph file instead of generating")
		trajPath  = flag.String("trajs", "", "load trajectories from this .trajs file")
		k         = flag.Int("k", 5, "number of sites to place")
		tau       = flag.Float64("tau", 0.8, "coverage threshold τ in km")
		prefName  = flag.String("pref", "binary", "preference function: binary, linear, convex, exp")
		useFM     = flag.Bool("fm", false, "use FM-NETCLUS (binary only)")
		compare   = flag.Bool("compare", false, "also run INC-GREEDY and report the quality gap")
		sweep     = flag.Bool("sweep", false, "re-answer the query for k=1..25 in one engine batch (shares one cached cover)")
		geoOut    = flag.String("geojson", "", "write the network, a trajectory sample and the answer to this GeoJSON file")
		savePath  = flag.String("save", "", "write the built index to this snapshot file")
		loadPath  = flag.String("load", "", "warm-start from this snapshot instead of building (dataset must match)")
		cacheDir  = flag.String("cache", "", "snapshot-cache directory for preset indexes (warm-starts repeat runs)")
		workers   = flag.Int("workers", 0, "index build parallelism (0 = all cores)")
	)
	flag.Parse()
	if *cacheDir != "" && *loadPath != "" {
		fatal(fmt.Errorf("-cache and -load are mutually exclusive: the cache decides which snapshot to read"))
	}
	if *cacheDir != "" && (*graphPath != "" || *trajPath != "") {
		fatal(fmt.Errorf("-cache only applies to -preset datasets; use -save/-load with -graph/-trajs"))
	}

	var inst *tops.Instance
	var idx *netclus.Index
	if *graphPath != "" && *trajPath != "" {
		gf, err := os.Open(*graphPath)
		if err != nil {
			fatal(err)
		}
		g, err := roadnet.ReadGraph(gf)
		gf.Close()
		if err != nil {
			fatal(err)
		}
		tf, err := os.Open(*trajPath)
		if err != nil {
			fatal(err)
		}
		trajs, err := trajectory.ReadStore(tf)
		tf.Close()
		if err != nil {
			fatal(err)
		}
		sites, err := gen.SampleSites(g, gen.SiteConfig{})
		if err != nil {
			fatal(err)
		}
		inst, err = tops.NewInstance(g, trajs, sites)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded %d nodes, %d trajectories\n", g.NumNodes(), trajs.Len())
	} else if *cacheDir != "" {
		// Preset + snapshot cache: one call loads the dataset and serves
		// its index warm when a valid cache entry exists.
		t0 := time.Now()
		di, err := netclus.LoadIndexedDataset(dataset.Preset(*preset),
			netclus.DatasetConfig{Scale: *scale, Seed: *seed, CacheDir: *cacheDir},
			netclus.BuildOptions{Workers: *workers})
		if err != nil {
			fatal(err)
		}
		inst = di.Instance
		idx = di.Index
		fmt.Println(di.Summary())
		how := "cold build + cache"
		if di.WarmLoaded {
			how = "warm load"
		}
		fmt.Printf("index via %s (%s) in %.3fs\n", how, di.SnapshotPath, time.Since(t0).Seconds())
	} else {
		d, err := dataset.Load(dataset.Preset(*preset), dataset.Config{Scale: *scale, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		inst = d.Instance
		fmt.Println(d.Summary())
	}

	var pref tops.Preference
	switch *prefName {
	case "binary":
		pref = tops.Binary(*tau)
	case "linear":
		pref = tops.Linear(*tau)
	case "convex":
		pref = tops.ConvexQuadratic(*tau)
	case "exp":
		pref = tops.ExpDecay(*tau, 1)
	default:
		fatal(fmt.Errorf("unknown preference %q", *prefName))
	}

	switch {
	case idx != nil: // already warm-started via -cache
	case *loadPath != "":
		fmt.Printf("warm-starting from %s… ", *loadPath)
		t0 := time.Now()
		var err error
		idx, err = netclus.LoadFile(*loadPath, inst)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("done in %.3fs (%d instances, %.1f MB)\n",
			time.Since(t0).Seconds(), len(idx.Instances), float64(idx.MemoryBytes())/(1<<20))
	default:
		fmt.Print("building NETCLUS index (offline phase)… ")
		t0 := time.Now()
		var err error
		idx, err = netclus.Build(inst, netclus.BuildOptions{Workers: *workers})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("done in %.1fs (%d instances, %.1f MB)\n",
			time.Since(t0).Seconds(), len(idx.Instances), float64(idx.MemoryBytes())/(1<<20))
	}
	if *savePath != "" {
		if err := netclus.SaveFile(idx, *savePath); err != nil {
			fatal(err)
		}
		fmt.Printf("saved snapshot to %s\n", *savePath)
	}

	// Serve through the engine: the first query fills the cover cache for
	// (instance, ψ); the k-sweep below then reuses it, which is the
	// interactive usage pattern the paper motivates.
	eng, err := netclus.NewEngine(idx, netclus.EngineOptions{})
	if err != nil {
		fatal(err)
	}

	t1 := time.Now()
	res, err := eng.Query(context.Background(), netclus.QueryOptions{K: *k, Pref: pref, UseFM: *useFM, Seed: uint64(*seed)})
	if err != nil {
		fatal(err)
	}
	qSec := time.Since(t1).Seconds()
	fmt.Printf("\nTOPS(k=%d, τ=%.2f km, ψ=%s) via instance %d (%d representatives) in %.0f ms\n",
		*k, *tau, pref.Name, res.InstanceUsed, res.NumRepresentatives, qSec*1000)
	fmt.Printf("estimated utility: %.1f (%.1f%% of %d trajectories)\n",
		res.EstimatedUtility, 100*res.EstimatedUtility/float64(inst.M()), inst.M())
	for i, node := range res.Sites {
		p := inst.G.Point(node)
		fmt.Printf("  site %d: node %d at %s\n", i+1, node, p)
	}

	if *sweep {
		// Re-answer the query for a k ladder in one batch: all entries
		// share one cached covering structure.
		var qs []netclus.QueryOptions
		for _, kk := range []int{1, 2, 5, 10, 15, 20, 25} {
			qs = append(qs, netclus.QueryOptions{K: kk, Pref: pref, UseFM: *useFM, Seed: uint64(*seed)})
		}
		t2 := time.Now()
		items := eng.QueryBatch(context.Background(), qs)
		fmt.Printf("\nk-sweep (%d queries in %.0f ms):\n", len(qs), time.Since(t2).Seconds()*1000)
		for i, it := range items {
			if it.Err != nil {
				fatal(it.Err)
			}
			fmt.Printf("  k=%-2d estimated utility %.1f (%.1f%%)\n", qs[i].K,
				it.Result.EstimatedUtility, 100*it.Result.EstimatedUtility/float64(inst.M()))
		}
		st := eng.Stats()
		fmt.Printf("engine: %d queries, cover cache %d hits / %d misses, cover %.0f ms, greedy %.0f ms\n",
			st.Queries+st.BatchQueries, st.CoverHits, st.CoverMisses,
			st.CoverTime.Seconds()*1000, st.GreedyTime.Seconds()*1000)
	}

	if *geoOut != "" {
		fc := geojson.NewCollection()
		fc.AddNetwork(inst.G, 4) // thin the edges for viewability
		for i := 0; i < inst.M() && i < 100; i++ {
			fc.AddTrajectory(inst.G, trajectory.ID(i), inst.Trajs.Get(trajectory.ID(i)))
		}
		fc.AddSites(inst.G, res.Sites)
		f, err := os.Create(*geoOut)
		if err != nil {
			fatal(err)
		}
		if _, err := fc.WriteTo(f); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("wrote %s\n", *geoOut)
	}

	if *compare {
		fmt.Print("\nrunning INC-GREEDY baseline… ")
		horizon := *tau * 1.5
		if horizon < 2 {
			horizon = 2
		}
		t2 := time.Now()
		distIdx, err := tops.BuildDistanceIndex(inst, horizon)
		if err != nil {
			fatal(err)
		}
		cs, err := tops.BuildCoverSets(distIdx, pref)
		if err != nil {
			fatal(err)
		}
		incg, err := tops.IncGreedy(cs, tops.GreedyOptions{K: *k})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("done in %.1fs\n", time.Since(t2).Seconds())
		exactU, covered := idx.EvaluateExact(distIdx, pref, res.Sites)
		fmt.Printf("INCG utility: %.1f | NETCLUS exact utility: %.1f (%d covered) | ratio %.3f\n",
			incg.Utility, exactU, covered, exactU/incg.Utility)
	}
}
