package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: netclus/internal/core
cpu: AMD EPYC 7B13
BenchmarkIndexBuild/sequential-8         	       1	 123456789 ns/op
BenchmarkIndexBuild/parallel-8           	       1	  23456789 ns/op
BenchmarkSnapshotLoad-8                  	      10	   1234567 ns/op	 512.34 MB/s	 2048 B/op	  12 allocs/op
PASS
ok  	netclus/internal/core	3.210s
`

func TestParseBenchOutput(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.CPU == "" {
		t.Fatalf("preamble not parsed: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "IndexBuild/sequential" || b.Procs != 8 || b.Pkg != "netclus/internal/core" {
		t.Fatalf("first benchmark misparsed: %+v", b)
	}
	if b.Raw != "IndexBuild/sequential-8" {
		t.Fatalf("raw name not preserved: %q", b.Raw)
	}
	if b.Metrics["ns/op"] != 123456789 {
		t.Fatalf("ns/op = %v", b.Metrics["ns/op"])
	}
	load := rep.Benchmarks[2]
	if load.Iterations != 10 || load.Metrics["MB/s"] != 512.34 || load.Metrics["allocs/op"] != 12 {
		t.Fatalf("multi-metric line misparsed: %+v", load)
	}
	// Non-benchmark lines survive in the log, not as silent drops.
	foundOK := false
	for _, l := range rep.Log {
		if strings.HasPrefix(l, "ok") {
			foundOK = true
		}
	}
	if !foundOK {
		t.Fatal("trailer lines missing from log")
	}
}

func TestParseIgnoresMalformedBenchLines(t *testing.T) {
	rep, err := parse(strings.NewReader("BenchmarkBroken-8 notanumber ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 || len(rep.Log) != 1 {
		t.Fatalf("malformed line handling: %+v", rep)
	}
}
