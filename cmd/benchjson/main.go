// Command benchjson converts `go test -bench` output into a stable JSON
// document, so CI can archive benchmark runs (BENCH_PR2.json and friends)
// and the performance trajectory across PRs stays diffable by machines,
// not just eyeballs.
//
// Usage:
//
//	go test -bench . -benchtime 1x -run '^$' ./... | benchjson -out BENCH.json
//	benchjson -in bench.txt -out BENCH.json -label pr2
//
// The parser understands standard testing.B lines — name, iteration count,
// then (value, unit) pairs such as ns/op, B/op, allocs/op, MB/s, and any
// custom b.ReportMetric units — plus the goos/goarch/pkg/cpu preamble.
// Unparseable lines pass through into the "log" field rather than failing
// the run: a benchmark that crashes should fail CI through its exit code,
// not through the converter.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed testing.B result line.
type Benchmark struct {
	// Pkg is the Go package the benchmark ran in (from the preamble).
	Pkg string `json:"pkg"`
	// Name is the benchmark name without the "Benchmark" prefix and
	// without the -P GOMAXPROCS suffix (which lands in Procs). The text
	// format is ambiguous at GOMAXPROCS=1 (no suffix is printed, so a
	// name legitimately ending in -<digits> loses its tail here, same as
	// benchstat); Raw always preserves the unstripped ground truth.
	Name string `json:"name"`
	// Raw is the full benchmark name as printed, suffix included.
	Raw string `json:"raw"`
	// Procs is the GOMAXPROCS the benchmark ran at.
	Procs int `json:"procs"`
	// Iterations is b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value (ns/op, B/op, allocs/op, MB/s, custom).
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the archived document.
type Report struct {
	Schema     string      `json:"schema"`
	Label      string      `json:"label,omitempty"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// Log preserves non-benchmark lines (PASS/FAIL/ok markers, prints).
	Log []string `json:"log,omitempty"`
}

func parse(r io.Reader) (*Report, error) {
	rep := &Report{Schema: "netclus-bench/v1", Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line, pkg); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			} else {
				rep.Log = append(rep.Log, line)
			}
		default:
			rep.Log = append(rep.Log, line)
		}
	}
	return rep, sc.Err()
}

// parseBenchLine parses one "BenchmarkName-P  N  v1 u1  v2 u2 ..." line.
func parseBenchLine(line, pkg string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 1
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			procs = p
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Pkg: pkg, Name: name, Procs: procs, Iterations: iters,
		Raw:     strings.TrimPrefix(fields[0], "Benchmark"),
		Metrics: map[string]float64{},
	}
	rest := fields[2:]
	for i := 0; i+1 < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[rest[i+1]] = v
	}
	return b, true
}

func main() {
	var (
		in         = flag.String("in", "", "read benchmark output from this file (default stdin)")
		out        = flag.String("out", "", "write JSON to this file (default stdout)")
		label      = flag.String("label", "", "free-form label recorded in the report (e.g. pr2, commit sha)")
		allowEmpty = flag.Bool("allow-empty", false, "exit 0 even when no benchmark lines parse")
	)
	flag.Parse()

	var src io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		src = f
	}
	rep, err := parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep.Label = *label

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
	}
	if len(rep.Benchmarks) == 0 && !*allowEmpty {
		// An empty parse means the pipeline is misconfigured (the -bench
		// pattern matched nothing, or the output format drifted); a perf
		// archive that silently records nothing defeats its purpose.
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines parsed (pass -allow-empty to tolerate)")
		os.Exit(2)
	}
}
