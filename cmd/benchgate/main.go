// Command benchgate compares a fresh `go test -bench` run against a
// committed baseline and fails when a gated benchmark's ns/op regressed
// beyond the tolerance. CI runs it after the bench job so a PR that slows
// the hot path fails a machine check instead of relying on a reviewer to
// eyeball BENCH_*.json diffs.
//
// Usage:
//
//	benchgate -baseline BENCH_BASELINE.txt -current bench.txt \
//	  -gate 'EngineQPS/cached$|ShardedHotQPS' \
//	  -calibrate EngineQPS/cached_unpooled -max-regress 0.10
//
// The baseline is recorded on one machine and CI runs on another, so raw
// ns/op comparisons would gate on hardware, not on the code. -calibrate
// names a benchmark present in both files whose ns/op ratio estimates the
// host speed difference; every gated comparison is normalized by that
// factor, clamped at 1 so calibration can only relax the gate on slower
// hosts — on a faster host the comparison falls back to raw baseline
// numbers, which such a host beats unless the code genuinely regressed.
// Without -calibrate the comparison is raw.
//
// A gated benchmark present in the baseline but missing from the current
// run is an error: a gate that silently stops measuring is worse than no
// gate.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// aggregate picks the statistic a file's repeated observations (-count >
// 1) collapse to. The baseline uses the median — the typical observation
// on the recording host; the current run uses the minimum — the code's
// optimistic floor, which a genuine regression raises but noise cannot
// lower. Comparing current-min against baseline-median is what keeps a
// 10% gate meaningful on shared runners whose run-to-run noise exceeds
// 10%: one slow interval can't fail the build, a real slowdown still
// shows in every observation including the best one.
type aggregate int

const (
	aggMin aggregate = iota
	aggMedian
)

// nsPerOp maps benchmark name (without the "Benchmark" prefix and the
// -GOMAXPROCS suffix) to its aggregated ns/op.
//
// The -GOMAXPROCS suffix is only stripped when every benchmark line in
// the file carries the identical "-<digits>" tail: the testing package
// appends the same suffix to every benchmark of a run (and none at
// GOMAXPROCS=1), whereas a legitimate name tail like "shards-4" varies
// line to line. Stripping unconditionally would collapse shards-1/2/4
// into one key on a 1-CPU host and break the baseline-vs-CI match.
func parseNsPerOp(r io.Reader, agg aggregate) (map[string]float64, error) {
	type obs struct {
		name string
		ns   float64
	}
	var all []obs
	suffix, suffixConsistent := "", true
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		tail := ""
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				tail = name[i:]
			}
		}
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			all = append(all, obs{name, v})
			if suffix == "" {
				suffix = tail
			}
			if tail == "" || tail != suffix {
				suffixConsistent = false
			}
		}
	}
	grouped := map[string][]float64{}
	for _, o := range all {
		name := o.name
		if suffixConsistent && suffix != "" {
			name = strings.TrimSuffix(name, suffix)
		}
		grouped[name] = append(grouped[name], o.ns)
	}
	out := make(map[string]float64, len(grouped))
	for name, vs := range grouped {
		sort.Float64s(vs)
		switch agg {
		case aggMedian:
			// Even counts take the lower middle: a concrete observation,
			// and the conservative (smaller) choice for a baseline.
			out[name] = vs[(len(vs)-1)/2]
		default:
			out[name] = vs[0]
		}
	}
	return out, sc.Err()
}

func loadFile(path string, agg aggregate) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseNsPerOp(f, agg)
}

// verdict is one gated comparison, ready to print.
type verdict struct {
	name             string
	base, cur, limit float64
	ratio            float64 // cur / (base * calibration)
	failed           bool
}

// gate compares every baseline benchmark matching re against the current
// run, normalizing by calFactor, and flags those beyond 1+maxRegress. A
// matching baseline entry missing from current is returned in missing.
func gate(base, cur map[string]float64, re *regexp.Regexp, calFactor, maxRegress float64) (verdicts []verdict, missing []string) {
	for name, b := range base {
		if !re.MatchString(name) {
			continue
		}
		c, ok := cur[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		adj := b * calFactor
		limit := adj * (1 + maxRegress)
		verdicts = append(verdicts, verdict{
			name: name, base: b, cur: c, limit: limit,
			ratio:  c / adj,
			failed: c > limit,
		})
	}
	sort.Slice(verdicts, func(i, j int) bool { return verdicts[i].name < verdicts[j].name })
	sort.Strings(missing)
	return verdicts, missing
}

func main() {
	var (
		baseline   = flag.String("baseline", "", "committed `go test -bench` output to gate against (required)")
		current    = flag.String("current", "", "fresh benchmark output (default stdin)")
		gateExpr   = flag.String("gate", ".", "regexp selecting which baseline benchmarks are gated")
		calibrate  = flag.String("calibrate", "", "benchmark whose ns/op ratio normalizes for host speed (must match in both files)")
		maxRegress = flag.Float64("max-regress", 0.10, "fail when ns/op exceeds the (calibrated) baseline by this fraction")
	)
	flag.Parse()
	if *baseline == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline is required")
		os.Exit(2)
	}
	re, err := regexp.Compile(*gateExpr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: bad -gate: %v\n", err)
		os.Exit(2)
	}

	base, err := loadFile(*baseline, aggMedian)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	var cur map[string]float64
	if *current == "" {
		cur, err = parseNsPerOp(os.Stdin, aggMin)
	} else {
		cur, err = loadFile(*current, aggMin)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}

	calFactor := 1.0
	if *calibrate != "" {
		b, okB := base[*calibrate]
		c, okC := cur[*calibrate]
		if !okB || !okC {
			fmt.Fprintf(os.Stderr, "benchgate: calibration benchmark %q missing (baseline: %v, current: %v)\n", *calibrate, okB, okC)
			os.Exit(2)
		}
		// Calibration may only RELAX the gate (current host slower than
		// the recording host), never tighten it: on a faster host the
		// comparison falls back to raw baseline ns/op. An unclamped
		// factor < 1 would transfer the calibrator arm's own good
		// fortune onto every gated arm and fail runs whose absolute
		// numbers beat the baseline across the board.
		calFactor = c / b
		raw := calFactor
		if calFactor < 1 {
			calFactor = 1
		}
		fmt.Printf("calibration %s: baseline %.0f ns/op, current %.0f ns/op, host factor %.3f (applied %.3f)\n",
			*calibrate, b, c, raw, calFactor)
	}

	verdicts, missing := gate(base, cur, re, calFactor, *maxRegress)
	if len(verdicts) == 0 && len(missing) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: -gate %q matched nothing in the baseline\n", *gateExpr)
		os.Exit(2)
	}
	failed := len(missing) > 0
	for _, m := range missing {
		fmt.Printf("MISSING  %-44s gated benchmark absent from current run\n", m)
	}
	for _, v := range verdicts {
		status := "ok      "
		if v.failed {
			status = "REGRESS "
			failed = true
		}
		fmt.Printf("%s %-44s baseline %12.0f ns/op  current %12.0f ns/op  ratio %.3f (limit %.3f)\n",
			status, v.name, v.base, v.cur, v.ratio, 1+*maxRegress)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchgate: FAIL")
		os.Exit(1)
	}
	fmt.Println("benchgate: PASS")
}
