package main

import (
	"regexp"
	"strings"
	"testing"
)

const sampleBase = `
goos: linux
goarch: amd64
pkg: netclus/internal/engine
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkEngineQPS/cached-4            40927     10000 ns/op    0 B/op   0 allocs/op   17258 qps
BenchmarkEngineQPS/cached_unpooled-4   20000     20000 ns/op   512 B/op  9 allocs/op
BenchmarkShardedHotQPS/shards-4-4       8000     50000 ns/op
PASS
ok  	netclus/internal/engine	12.3s
`

func parseStr(t *testing.T, s string) map[string]float64 {
	t.Helper()
	m, err := parseNsPerOp(strings.NewReader(s), aggMin)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParseNsPerOp(t *testing.T) {
	m := parseStr(t, sampleBase)
	want := map[string]float64{
		"EngineQPS/cached":          10000,
		"EngineQPS/cached_unpooled": 20000,
		"ShardedHotQPS/shards-4":    50000,
	}
	if len(m) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(m), len(want), m)
	}
	for k, v := range want {
		if m[k] != v {
			t.Errorf("%s = %v, want %v", k, m[k], v)
		}
	}
}

func TestParseAggregatesAcrossCounts(t *testing.T) {
	const repeated = `
BenchmarkEngineQPS/cached-4  100  12000 ns/op
BenchmarkEngineQPS/cached-4  100  10500 ns/op
BenchmarkEngineQPS/cached-4  100  11800 ns/op
`
	if m := parseStr(t, repeated); m["EngineQPS/cached"] != 10500 {
		t.Fatalf("current-run aggregation kept %v, want the minimum 10500", m["EngineQPS/cached"])
	}
	med, err := parseNsPerOp(strings.NewReader(repeated), aggMedian)
	if err != nil {
		t.Fatal(err)
	}
	if med["EngineQPS/cached"] != 11800 {
		t.Fatalf("baseline aggregation kept %v, want the median 11800", med["EngineQPS/cached"])
	}
}

func TestParseSuffixStripping(t *testing.T) {
	// GOMAXPROCS=1 run: no -P suffix anywhere, so a "-4" in a benchmark's
	// own name must survive (shards-1/2/4 stay distinct keys).
	m := parseStr(t, `
BenchmarkEngineQPS/cached  	100	100 ns/op
BenchmarkShardedHotQPS/shards-1  	100	150 ns/op
BenchmarkShardedHotQPS/shards-4  	100	200 ns/op
`)
	for _, k := range []string{"EngineQPS/cached", "ShardedHotQPS/shards-1", "ShardedHotQPS/shards-4"} {
		if _, ok := m[k]; !ok {
			t.Errorf("1-CPU run lost key %q: %v", k, m)
		}
	}
	// Multi-core run: every line carries the same -8, which is the
	// GOMAXPROCS suffix and must be stripped — including from shards-4-8,
	// so the keys match a 1-CPU baseline.
	m = parseStr(t, `
BenchmarkEngineQPS/cached-8  	100	100 ns/op
BenchmarkShardedHotQPS/shards-4-8  	100	200 ns/op
`)
	if _, ok := m["EngineQPS/cached"]; !ok {
		t.Errorf("-8 suffix not stripped: %v", m)
	}
	if _, ok := m["ShardedHotQPS/shards-4"]; !ok {
		t.Errorf("shards-4-8 did not normalize to shards-4: %v", m)
	}
}

func TestGatePassAndFail(t *testing.T) {
	base := parseStr(t, sampleBase)
	re := regexp.MustCompile(`EngineQPS/cached$|ShardedHotQPS`)

	// Within tolerance everywhere: pass.
	cur := map[string]float64{
		"EngineQPS/cached":          10500,
		"EngineQPS/cached_unpooled": 20000,
		"ShardedHotQPS/shards-4":    52000,
	}
	verdicts, missing := gate(base, cur, re, 1.0, 0.10)
	if len(missing) != 0 {
		t.Fatalf("unexpected missing: %v", missing)
	}
	if len(verdicts) != 2 {
		t.Fatalf("gated %d benchmarks, want 2 (cached_unpooled must not match the $-anchored gate): %+v", len(verdicts), verdicts)
	}
	for _, v := range verdicts {
		if v.failed {
			t.Errorf("%s flagged as regression at ratio %.3f, tolerance 0.10", v.name, v.ratio)
		}
	}

	// 30% slower on one gated arm: that arm fails, the other passes.
	cur["ShardedHotQPS/shards-4"] = 65000
	verdicts, _ = gate(base, cur, re, 1.0, 0.10)
	for _, v := range verdicts {
		want := v.name == "ShardedHotQPS/shards-4"
		if v.failed != want {
			t.Errorf("%s failed=%v, want %v", v.name, v.failed, want)
		}
	}
}

func TestGateCalibration(t *testing.T) {
	base := parseStr(t, sampleBase)
	re := regexp.MustCompile(`EngineQPS/cached$`)
	// The current host is 2x slower across the board (calibrator went
	// 20000 -> 40000). Raw comparison would flag a 2x "regression";
	// calibrated it passes.
	cur := map[string]float64{
		"EngineQPS/cached":          20400,
		"EngineQPS/cached_unpooled": 40000,
	}
	cal := cur["EngineQPS/cached_unpooled"] / base["EngineQPS/cached_unpooled"]
	verdicts, _ := gate(base, cur, re, cal, 0.10)
	if len(verdicts) != 1 || verdicts[0].failed {
		t.Fatalf("calibrated same-speed run flagged: %+v", verdicts)
	}
	// A genuine 50% hot-path regression on the slower host still fails.
	cur["EngineQPS/cached"] = 30000
	verdicts, _ = gate(base, cur, re, cal, 0.10)
	if len(verdicts) != 1 || !verdicts[0].failed {
		t.Fatalf("calibrated genuine regression not flagged: %+v", verdicts)
	}
}

func TestGateMissingBenchmark(t *testing.T) {
	base := parseStr(t, sampleBase)
	re := regexp.MustCompile(`.`)
	cur := map[string]float64{"EngineQPS/cached": 10000}
	_, missing := gate(base, cur, re, 1.0, 0.10)
	if len(missing) != 2 {
		t.Fatalf("missing = %v, want the two absent benchmarks", missing)
	}
}
