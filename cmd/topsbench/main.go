// Command topsbench reproduces the paper's evaluation tables and figures.
//
// Usage:
//
//	topsbench -list
//	topsbench -exp fig5a
//	topsbench -exp fig4,table9 -scale 0.08
//	topsbench -exp all -quick
//
// Each experiment prints a paper-style table plus a note describing the
// shape the paper reports, so measured output can be compared directly.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"netclus/internal/bench"
)

func main() {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		scale    = flag.Float64("scale", 0, "dataset scale as a fraction of paper sizes (default 0.04, quick 0.012)")
		seed     = flag.Int64("seed", 42, "generation seed")
		quick    = flag.Bool("quick", false, "trimmed grids and smaller datasets")
		listOnly = flag.Bool("list", false, "list experiments and exit")
		saveDir  = flag.String("save", "", "write index snapshots into this directory after cold builds")
		loadDir  = flag.String("load", "", "warm-start harness indexes from snapshots in this directory")
	)
	flag.Parse()

	if *listOnly {
		for _, e := range bench.List() {
			fmt.Printf("%-22s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := bench.Config{Scale: *scale, Seed: *seed, Quick: *quick}
	switch {
	case *saveDir != "" && *loadDir != "" && filepath.Clean(*saveDir) != filepath.Clean(*loadDir):
		fmt.Fprintln(os.Stderr, "-save and -load must name the same directory when both are set")
		os.Exit(2)
	case *saveDir != "":
		cfg.SnapshotDir, cfg.SnapshotSave = *saveDir, true
		cfg.SnapshotLoad = *loadDir != ""
	case *loadDir != "":
		cfg.SnapshotDir, cfg.SnapshotLoad = *loadDir, true
	}
	h := bench.NewHarness(cfg)
	eff := h.Config()
	fmt.Printf("netclus topsbench: scale=%.3f seed=%d quick=%v\n\n", eff.Scale, eff.Seed, eff.Quick)

	var exps []bench.Experiment
	if *expFlag == "all" {
		exps = bench.List()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, err := bench.Get(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	failed := 0
	for _, e := range exps {
		start := time.Now()
		tbl, err := e.Run(h)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		fmt.Print(tbl.Render())
		fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
	if failed > 0 {
		os.Exit(1)
	}
}
