package netclus

// Benchmarks regenerating every table and figure of the paper's evaluation
// (§8), one testing.B benchmark per artifact, plus the ablation benches
// called out in DESIGN.md §5. Each bench runs the corresponding registry
// experiment from internal/bench at quick scale; run cmd/topsbench for the
// full-scale paper-style tables.
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFig5 -benchmem

import (
	"sync"
	"testing"

	"netclus/internal/bench"
)

var (
	benchOnce sync.Once
	benchH    *bench.Harness
)

// harness shares one quick-scale harness (and its cached datasets/indexes)
// across all benchmarks in the binary.
func harness() *bench.Harness {
	benchOnce.Do(func() {
		benchH = bench.NewHarness(bench.Config{Quick: true, Seed: 42})
	})
	return benchH
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := bench.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	h := harness()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl, err := e.Run(h)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// Fig. 4: comparison with the exact optimum on Beijing-Small.
func BenchmarkFig4_Optimal(b *testing.B) { runExperiment(b, "fig4") }

// Fig. 5a/5b: solution quality versus k and τ.
func BenchmarkFig5a_QualityVsK(b *testing.B)   { runExperiment(b, "fig5a") }
func BenchmarkFig5b_QualityVsTau(b *testing.B) { runExperiment(b, "fig5b") }

// Fig. 6a/6b: running time versus k and τ.
func BenchmarkFig6a_TimeVsK(b *testing.B)   { runExperiment(b, "fig6a") }
func BenchmarkFig6b_TimeVsTau(b *testing.B) { runExperiment(b, "fig6b") }

// Fig. 7a/7b: cost- and capacity-constrained TOPS.
func BenchmarkFig7a_Cost(b *testing.B)     { runExperiment(b, "fig7a") }
func BenchmarkFig7b_Capacity(b *testing.B) { runExperiment(b, "fig7b") }

// Fig. 8: the TOPS2 convex-preference variant.
func BenchmarkFig8_TOPS2(b *testing.B) { runExperiment(b, "fig8") }

// Fig. 9: cost-constrained site counts and runtimes.
func BenchmarkFig9_CostSitesTime(b *testing.B) { runExperiment(b, "fig9") }

// Fig. 10a/10b: scalability in |S| and |T|.
func BenchmarkFig10a_ScaleSites(b *testing.B) { runExperiment(b, "fig10a") }
func BenchmarkFig10b_ScaleTrajs(b *testing.B) { runExperiment(b, "fig10b") }

// Fig. 11: city geometries.
func BenchmarkFig11_Geometry(b *testing.B) { runExperiment(b, "fig11") }

// Fig. 12: trajectory length classes.
func BenchmarkFig12_Length(b *testing.B) { runExperiment(b, "fig12") }

// Table 7: resolution parameter γ sweep.
func BenchmarkTable7_GammaSweep(b *testing.B) { runExperiment(b, "table7") }

// Table 8: FM sketch count sweep.
func BenchmarkTable8_FMSweep(b *testing.B) { runExperiment(b, "table8") }

// Table 9: memory footprints versus τ.
func BenchmarkTable9_Memory(b *testing.B) { runExperiment(b, "table9") }

// Table 10: dynamic update cost.
func BenchmarkTable10_Updates(b *testing.B) { runExperiment(b, "table10") }

// Table 11: per-radius index construction statistics.
func BenchmarkTable11_IndexConstruction(b *testing.B) { runExperiment(b, "table11") }

// Table 12: Jaccard-similarity clustering baseline.
func BenchmarkTable12_Jaccard(b *testing.B) { runExperiment(b, "table12") }

// Ablations called out in DESIGN.md §5.
func BenchmarkAblationRepresentative(b *testing.B) { runExperiment(b, "ablation-rep") }
func BenchmarkAblationLazyGreedy(b *testing.B)     { runExperiment(b, "ablation-lazy") }
func BenchmarkAblationCompression(b *testing.B)    { runExperiment(b, "ablation-compression") }
func BenchmarkAblationFMPruning(b *testing.B)      { runExperiment(b, "ablation-fmprune") }
func BenchmarkAblationUpdateCost(b *testing.B)     { runExperiment(b, "ablation-updatecost") }
