// Fuel-station planning under a budget (TOPS-COST, §7.1 of the paper).
//
// A fuel retailer wants to enter a polycentric city. Land prices differ
// wildly between the dense centers and the periphery, and the total budget
// is fixed. The planner must choose sites that maximize the number of
// commuter trajectories passing within τ of a station, subject to the
// budget — more cheap peripheral stations versus fewer prime downtown
// locations.
//
// Run with: go run ./examples/fuelstations
package main

import (
	"fmt"
	"log"
	"math/rand"

	"netclus/internal/core"
	"netclus/internal/gen"
	"netclus/internal/tops"
)

func main() {
	city, err := gen.GenerateCity(gen.CityConfig{
		Topology: gen.Polycentric,
		Nodes:    2500,
		SpanKm:   18,
		Jitter:   0.2,
		Seed:     11,
	})
	if err != nil {
		log.Fatal(err)
	}
	trajs, err := gen.GenerateTrajectories(city, gen.TrajConfig{Count: 1500, Seed: 12})
	if err != nil {
		log.Fatal(err)
	}
	sites, err := gen.SampleSites(city.Graph, gen.SiteConfig{})
	if err != nil {
		log.Fatal(err)
	}
	inst, err := tops.NewInstance(city.Graph, trajs, sites)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("polycentric city: %d nodes, %d trajectories\n", city.Graph.NumNodes(), trajs.Len())

	// Land price model: cost grows toward each center (prime locations),
	// with noise. Mean ≈ 1 unit.
	rng := rand.New(rand.NewSource(13))
	costs := make([]float64, len(sites))
	for i, s := range sites {
		p := city.Graph.Point(s)
		// Distance to the nearest hotspot center.
		nearest := 1e18
		for _, h := range city.Hotspots {
			if d := p.Dist(h); d < nearest {
				nearest = d
			}
		}
		c := 1.8 - nearest/12 + rng.NormFloat64()*0.2
		if c < 0.1 {
			c = 0.1
		}
		costs[i] = c
	}

	idx, err := core.Build(inst, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	pref := tops.Binary(0.8)
	p := idx.InstanceFor(pref.Tau)
	cs, repClusters := idx.RepCover(p, pref)

	// Price each cluster representative with its real site cost.
	repCosts := make([]float64, len(repClusters))
	for ri, ci := range repClusters {
		node := idx.Instances[p].Clusters[ci].Rep
		if sid, ok := inst.SiteIDOf(node); ok {
			repCosts[ri] = costs[sid]
		} else {
			repCosts[ri] = 1
		}
	}

	for _, budget := range []float64{2, 5, 10, 20} {
		res, err := tops.CostGreedy(cs, tops.CostOptions{Costs: repCosts, Budget: budget})
		if err != nil {
			log.Fatal(err)
		}
		var spent float64
		for _, ri := range res.Selected {
			spent += repCosts[ri]
		}
		fmt.Printf("budget %5.1f -> %2d stations, spent %5.2f, coverage %5.1f%%\n",
			budget, len(res.Selected), spent,
			100*res.Utility/float64(trajs.Len()))
	}

	// Compare against the unconstrained TOPS answer with the same number
	// of stations the largest budget bought.
	res, err := tops.CostGreedy(cs, tops.CostOptions{Costs: repCosts, Budget: 20})
	if err != nil {
		log.Fatal(err)
	}
	unconstrained, err := idx.Query(core.QueryOptions{K: len(res.Selected), Pref: pref})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith %d stations, ignoring prices the best coverage is %.1f%% — the budget costs %.1f points of coverage\n",
		len(res.Selected),
		100*float64(unconstrained.EstimatedCovered)/float64(trajs.Len()),
		100*(float64(unconstrained.EstimatedCovered)-res.Utility)/float64(trajs.Len()))
}
