// Mobile ATM van placement with live trajectory updates (§6 of the paper).
//
// The paper motivates dynamic updates with mobile ATM van deployments:
// vans are re-positioned during the day as traffic patterns shift, so the
// index must absorb trajectory churn and answer fresh queries in real time
// — rebuilding from scratch is not an option.
//
// This example simulates a morning/evening commute shift on a star-topology
// city: morning trips flow inbound to the core, evening trips flow outbound.
// The index is built once; between the two query rounds the morning
// trajectories are deleted and the evening ones added through the dynamic
// update path. Capacity constraints (each van serves a bounded number of
// customers, §7.2) decide the final assignment.
//
// Run with: go run ./examples/atmvans
package main

import (
	"fmt"
	"log"
	"time"

	"netclus/internal/core"
	"netclus/internal/gen"
	"netclus/internal/roadnet"
	"netclus/internal/tops"
	"netclus/internal/trajectory"
)

func main() {
	city, err := gen.GenerateCity(gen.CityConfig{
		Topology: gen.Star,
		Nodes:    2200,
		SpanKm:   16,
		Jitter:   0.2,
		Seed:     21,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Morning rush: 1200 trips.
	morning, err := gen.GenerateTrajectories(city, gen.TrajConfig{Count: 1200, Seed: 22})
	if err != nil {
		log.Fatal(err)
	}
	sites, err := gen.SampleSites(city.Graph, gen.SiteConfig{})
	if err != nil {
		log.Fatal(err)
	}
	inst, err := tops.NewInstance(city.Graph, morning, sites)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("star city: %d nodes; morning rush: %d trips\n", city.Graph.NumNodes(), morning.Len())
	idx, err := core.Build(inst, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	query := func(label string) []roadnet.NodeID {
		start := time.Now()
		res, err := idx.Query(core.QueryOptions{K: 4, Pref: tops.Binary(0.6)})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: vans at %v — %.1f%% of live trips served (answered in %.0f ms)\n",
			label, res.Sites,
			100*float64(res.EstimatedCovered)/float64(idx.NumAlive()),
			time.Since(start).Seconds()*1000)
		return res.Sites
	}
	morningSites := query("08:00 morning deployment")

	// Midday shift: morning trips age out, evening trips arrive.
	evening, err := gen.GenerateTrajectories(city, gen.TrajConfig{
		Count: 1200, Seed: 23, HotspotProb: 0.8,
	})
	if err != nil {
		log.Fatal(err)
	}
	// The index appends additions to the same store, so snapshot the
	// morning count before mutating.
	morningCount := morning.Len()
	start := time.Now()
	for tid := 0; tid < morningCount; tid++ {
		if err := idx.DeleteTrajectory(trajectory.ID(tid)); err != nil {
			log.Fatal(err)
		}
	}
	deleted := time.Since(start)
	start = time.Now()
	added := 0
	for i := 0; i < evening.Len(); i++ {
		if _, err := idx.AddTrajectory(evening.Get(trajectory.ID(i))); err != nil {
			log.Fatal(err)
		}
		added++
	}
	fmt.Printf("16:00 pattern shift: %d trips retired in %.0f ms, %d added in %.0f ms (no rebuild)\n",
		morningCount, deleted.Seconds()*1000, added, time.Since(start).Seconds()*1000)

	eveningSites := query("17:00 evening deployment")

	moved := 0
	morningSet := map[roadnet.NodeID]bool{}
	for _, s := range morningSites {
		morningSet[s] = true
	}
	for _, s := range eveningSites {
		if !morningSet[s] {
			moved++
		}
	}
	fmt.Printf("%d of %d vans re-positioned for the evening pattern\n\n", moved, len(eveningSites))

	// Capacity-constrained assignment: each van stocks cash for 150
	// customers (TOPS-CAPACITY, §7.2).
	p := idx.InstanceFor(0.6)
	cs, repClusters := idx.RepCover(p, tops.Binary(0.6))
	caps := make([]int, len(repClusters))
	for i := range caps {
		caps[i] = 150
	}
	capRes, err := tops.CapacityGreedy(cs, tops.CapacityOptions{K: 4, Caps: caps})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("capacity-aware plan (150 customers/van): %.0f customers served by %d vans\n",
		capRes.Utility, len(capRes.Selected))
}
