// City-geometry study (Fig. 11 of the paper): how road-network topology
// shapes facility-placement quality.
//
// The paper contrasts New York (star), Atlanta (mesh) and Bangalore
// (polycentric) and finds that polycentric cities yield the highest
// coverage — demand concentrates around a handful of centers that a few
// well-placed sites intercept — while diffuse mesh cities yield the lowest.
// This example regenerates that comparison end to end, including the full
// offline pipeline (raw GPS traces -> map matching -> index).
//
// Run with: go run ./examples/citygeometry
package main

import (
	"fmt"
	"log"

	"netclus/internal/core"
	"netclus/internal/gen"
	"netclus/internal/mapmatch"
	"netclus/internal/tops"
	"netclus/internal/trajectory"
)

func main() {
	type citySpec struct {
		name string
		topo gen.Topology
	}
	specs := []citySpec{
		{"new-york (star)", gen.Star},
		{"atlanta (mesh)", gen.GridMesh},
		{"bangalore (polycentric)", gen.Polycentric},
	}
	fmt.Println("topology study: k=5 facilities, τ=0.8 km, 800 trips per city")
	fmt.Println()
	for _, sp := range specs {
		city, err := gen.GenerateCity(gen.CityConfig{
			Topology: sp.topo, Nodes: 1800, SpanKm: 14, Jitter: 0.25, Seed: 31,
		})
		if err != nil {
			log.Fatal(err)
		}
		raw, err := gen.GenerateTrajectories(city, gen.TrajConfig{Count: 800, Seed: 32})
		if err != nil {
			log.Fatal(err)
		}

		// Full offline pipeline: emit noisy GPS traces and map-match them
		// back, exactly as the paper's Fig. 2 flow ingests real traces.
		matcher := mapmatch.NewMatcher(city.Graph, mapmatch.Config{})
		matched := trajectory.NewStore(raw.Len())
		failures := 0
		for i := 0; i < raw.Len(); i++ {
			trace := gen.EmitGPS(city.Graph, raw.Get(trajectory.ID(i)),
				gen.GPSConfig{NoiseSigmaKm: 0.015, Seed: int64(i)})
			tr, err := matcher.Match(trace)
			if err != nil {
				failures++
				continue
			}
			matched.Add(tr)
		}

		sites, err := gen.SampleSites(city.Graph, gen.SiteConfig{})
		if err != nil {
			log.Fatal(err)
		}
		inst, err := tops.NewInstance(city.Graph, matched, sites)
		if err != nil {
			log.Fatal(err)
		}
		idx, err := core.Build(inst, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		res, err := idx.Query(core.QueryOptions{K: 5, Pref: tops.Binary(0.8)})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %4d nodes kept | map-matched %d/%d | coverage %5.1f%% | instance %d\n",
			sp.name, city.Graph.NumNodes(), matched.Len(), raw.Len(),
			100*float64(res.EstimatedCovered)/float64(matched.Len()), res.InstanceUsed)
	}
	fmt.Println()
	fmt.Println("expected shape (paper Fig. 11): polycentric > star > mesh in coverage")
}
