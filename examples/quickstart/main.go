// Quickstart: the minimal end-to-end NetClus workflow, written entirely
// against the public facade (the root netclus package).
//
//  1. Generate a synthetic city road network and commuter trajectories.
//  2. Build the NETCLUS multi-resolution index (offline phase).
//  3. Wrap it in an Engine and answer TOPS queries: "place k=5 fuel
//     stations so that as many trajectories as possible pass within τ=0.8
//     km round-trip detour".
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"netclus"
)

func main() {
	// 1. A mid-sized grid city with hotspot-skewed commuting.
	city, err := netclus.GenerateCity(netclus.CityConfig{
		Topology: netclus.GridMesh,
		Nodes:    3000,
		SpanKm:   15,
		Jitter:   0.25,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	trajs, err := netclus.GenerateTrajectories(city, netclus.TrajConfig{Count: 2000, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	// Every road intersection is a candidate site, like the paper's
	// default setup.
	sites, err := netclus.SampleSites(city.Graph, netclus.SiteConfig{})
	if err != nil {
		log.Fatal(err)
	}
	inst, err := netclus.NewInstance(city.Graph, trajs, sites)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("city: %d nodes, %d edges; %d trajectories; %d candidate sites\n",
		city.Graph.NumNodes(), city.Graph.NumEdges(), trajs.Len(), len(sites))

	// 2. Offline phase: build the index once; it then serves any (k, τ, ψ).
	start := time.Now()
	idx, err := netclus.Build(inst, netclus.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NETCLUS index: %d resolution instances in %.1fs, %.1f MB\n",
		len(idx.Instances), time.Since(start).Seconds(), float64(idx.MemoryBytes())/(1<<20))

	// Wrap the index in the serving engine: queries share memoized
	// covering structures and may run concurrently with updates.
	eng, err := netclus.NewEngine(idx, netclus.EngineOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Online phase: the TOPS query.
	start = time.Now()
	res, err := eng.Query(context.Background(), netclus.QueryOptions{K: 5, Pref: netclus.Binary(0.8)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query answered in %.0f ms using instance %d (%d cluster representatives)\n",
		time.Since(start).Seconds()*1000, res.InstanceUsed, res.NumRepresentatives)
	fmt.Printf("estimated coverage: %d of %d trajectories (%.1f%%)\n",
		res.EstimatedCovered, trajs.Len(), 100*float64(res.EstimatedCovered)/float64(trajs.Len()))
	for i, node := range res.Sites {
		fmt.Printf("  station %d -> intersection %d at %s\n", i+1, node, city.Graph.Point(node))
	}

	// Vary τ interactively — the index picks a different resolution, no
	// rebuild needed — then re-run the original query: the engine serves
	// it straight from the cover cache.
	for _, tau := range []float64{0.4, 1.6, 3.2} {
		r, err := eng.Query(context.Background(), netclus.QueryOptions{K: 5, Pref: netclus.Binary(tau)})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("τ=%.1f km -> instance %d, %.1f%% coverage\n",
			tau, r.InstanceUsed, 100*float64(r.EstimatedCovered)/float64(trajs.Len()))
	}
	start = time.Now()
	if _, err := eng.Query(context.Background(), netclus.QueryOptions{K: 5, Pref: netclus.Binary(0.8)}); err != nil {
		log.Fatal(err)
	}
	st := eng.Stats()
	fmt.Printf("repeat query in %.2f ms (cover cache: %d hits, %d misses)\n",
		time.Since(start).Seconds()*1000, st.CoverHits, st.CoverMisses)
}
