module netclus

go 1.24
